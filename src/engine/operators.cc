#include "engine/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"

namespace s2rdf::engine {

uint64_t RowKeyHash(const Table& table, size_t row,
                    const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = HashCombine(h, table.At(row, static_cast<size_t>(c)));
  }
  return h;
}

bool RowKeysEqual(const Table& a, size_t row_a, const std::vector<int>& cols_a,
                  const Table& b, size_t row_b,
                  const std::vector<int>& cols_b) {
  for (size_t i = 0; i < cols_a.size(); ++i) {
    if (a.At(row_a, static_cast<size_t>(cols_a[i])) !=
        b.At(row_b, static_cast<size_t>(cols_b[i]))) {
      return false;
    }
  }
  return true;
}

bool RowKeyHasNull(const Table& t, size_t row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (t.At(row, static_cast<size_t>(c)) == kNullTermId) return true;
  }
  return false;
}

void JoinSharedColumns(const Table& left, const Table& right,
                       std::vector<int>* left_keys,
                       std::vector<int>* right_keys,
                       std::vector<int>* right_only) {
  for (size_t i = 0; i < right.column_names().size(); ++i) {
    int li = left.ColumnIndex(right.column_names()[i]);
    if (li >= 0) {
      left_keys->push_back(li);
      right_keys->push_back(static_cast<int>(i));
    } else {
      right_only->push_back(static_cast<int>(i));
    }
  }
}

Table JoinOutputSchema(const Table& left, const Table& right,
                       const std::vector<int>& right_only) {
  std::vector<std::string> names = left.column_names();
  for (int c : right_only) {
    names.push_back(right.column_names()[static_cast<size_t>(c)]);
  }
  return Table(std::move(names));
}

void EmitJoinedRow(const Table& left, size_t lrow, const Table& right,
                   size_t rrow, const std::vector<int>& right_only,
                   Table* out) {
  std::vector<TermId> row;
  row.reserve(out->NumColumns());
  for (size_t c = 0; c < left.NumColumns(); ++c) row.push_back(left.At(lrow, c));
  for (int c : right_only) {
    row.push_back(right.At(rrow, static_cast<size_t>(c)));
  }
  out->AppendRow(row);
}

bool ScanSelectProjectRange(const Table& base, const ScanSpec& spec,
                            size_t begin, size_t end, const ExecContext* ctx,
                            Table* out) {
  for (size_t r = begin; r < end; ++r) {
    if (((r - begin) % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->InterruptRequested()) {
      return false;  // Caller discards/records; workers must not record.
    }
    if (spec.row_filter != nullptr && !spec.row_filter->Test(r)) continue;
    bool match = true;
    for (const auto& [col, id] : spec.conditions) {
      if (base.At(r, static_cast<size_t>(col)) != id) {
        match = false;
        break;
      }
    }
    for (int col : spec.not_null_columns) {
      if (base.At(r, static_cast<size_t>(col)) == kNullTermId) {
        match = false;
        break;
      }
    }
    for (const auto& [col_a, col_b] : spec.equal_columns) {
      if (!match) break;
      if (base.At(r, static_cast<size_t>(col_a)) !=
          base.At(r, static_cast<size_t>(col_b))) {
        match = false;
      }
    }
    if (!match) continue;
    std::vector<TermId> row;
    row.reserve(spec.projections.size());
    for (const auto& [col, name] : spec.projections) {
      row.push_back(base.At(r, static_cast<size_t>(col)));
    }
    out->AppendRow(row);
  }
  return true;
}

bool ScanSelectProjectChunk(const Table& base, const ScanSpec& spec,
                            size_t begin, size_t end, const ExecContext* ctx,
                            Table* out) {
  std::vector<int> proj_cols;
  proj_cols.reserve(spec.projections.size());
  for (const auto& [col, name] : spec.projections) proj_cols.push_back(col);

  std::vector<uint32_t> sel;
  sel.reserve(kVectorChunkRows);
  for (size_t b = begin; b < end; b += kVectorChunkRows) {
    if (ctx != nullptr && ctx->InterruptRequested()) {
      return false;  // Caller discards/records; workers must not record.
    }
    const size_t e = std::min(b + kVectorChunkRows, end);
    sel.clear();
    if (spec.row_filter != nullptr) {
      for (size_t r = b; r < e; ++r) {
        if (spec.row_filter->Test(r)) sel.push_back(static_cast<uint32_t>(r));
      }
    } else {
      for (size_t r = b; r < e; ++r) sel.push_back(static_cast<uint32_t>(r));
    }
    // Predicates prune the selection vector one column at a time: each
    // pass is a tight compare-and-compact loop over a single column's
    // contiguous ids. The surviving set (an AND of all predicates) and
    // its ascending order are exactly the row-at-a-time result.
    for (const auto& [col, id] : spec.conditions) {
      if (sel.empty()) break;
      const TermId* v = base.ColumnData(static_cast<size_t>(col));
      size_t kept = 0;
      for (uint32_t r : sel) {
        sel[kept] = r;
        kept += v[r] == id;
      }
      sel.resize(kept);
    }
    for (int col : spec.not_null_columns) {
      if (sel.empty()) break;
      const TermId* v = base.ColumnData(static_cast<size_t>(col));
      size_t kept = 0;
      for (uint32_t r : sel) {
        sel[kept] = r;
        kept += v[r] != kNullTermId;
      }
      sel.resize(kept);
    }
    for (const auto& [col_a, col_b] : spec.equal_columns) {
      if (sel.empty()) break;
      const TermId* va = base.ColumnData(static_cast<size_t>(col_a));
      const TermId* vb = base.ColumnData(static_cast<size_t>(col_b));
      size_t kept = 0;
      for (uint32_t r : sel) {
        sel[kept] = r;
        kept += va[r] == vb[r];
      }
      sel.resize(kept);
    }
    if (!sel.empty()) {
      out->AppendGather(base, proj_cols, sel.data(), sel.size());
    }
  }
  return true;
}

Table ScanSelectProject(const Table& base, const ScanSpec& spec,
                        ExecContext* ctx) {
  if (spec.row_filter != nullptr) {
    S2RDF_CHECK(spec.row_filter->size_bits() == base.NumRows());
  }
  if (ctx != nullptr) {
    ctx->metrics.input_tuples += spec.row_filter != nullptr
                                     ? spec.row_filter->CountSetBits()
                                     : base.NumRows();
  }
  std::vector<std::string> names;
  names.reserve(spec.projections.size());
  for (const auto& [col, name] : spec.projections) names.push_back(name);
  Table out(std::move(names));
  if (!ScanSelectProjectRange(base, spec, 0, base.NumRows(), ctx, &out) &&
      ctx != nullptr) {
    // Record why (owner thread); ExecutePlan discards the partial batch.
    ctx->CheckInterrupt();
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table HashJoin(const Table& left, const Table& right, ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  JoinSharedColumns(left, right, &left_keys, &right_keys, &right_only);
  Table out = JoinOutputSchema(left, right, right_only);

  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  if (left_keys.empty()) {
    // Cross product.
    size_t since_check = 0;
    for (size_t lr = 0; lr < left.NumRows(); ++lr) {
      for (size_t rr = 0; rr < right.NumRows(); ++rr) {
        if (++since_check >= kInterruptCheckRows) {
          since_check = 0;
          if (ctx != nullptr && ctx->CheckInterrupt()) {
            // Partial output; ExecutePlan reports the interrupt.
            ctx->metrics.intermediate_tuples += out.NumRows();
            return out;
          }
        }
        EmitJoinedRow(left, lr, right, rr, right_only, &out);
      }
    }
    if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
    return out;
  }

  // Build on the right, probe with the left (right is typically the
  // newly-selected smallest table under Algorithm 4's ordering). The
  // bucket keeps right rows in ascending order, making the output
  // sequence canonical (left input order, matches ascending) — the
  // contract ParallelHashJoin's gather reproduces.
  std::unordered_map<uint64_t, std::vector<size_t>> build;
  build.reserve(right.NumRows());
  for (size_t rr = 0; rr < right.NumRows(); ++rr) {
    if ((rr % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial build; the probe loop's check fires immediately.
    }
    if (RowKeyHasNull(right, rr, right_keys)) continue;
    build[RowKeyHash(right, rr, right_keys)].push_back(rr);
  }
  for (size_t lr = 0; lr < left.NumRows(); ++lr) {
    if ((lr % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    if (RowKeyHasNull(left, lr, left_keys)) continue;
    auto it = build.find(RowKeyHash(left, lr, left_keys));
    if (it == build.end()) continue;
    for (size_t rr : it->second) {
      if (RowKeysEqual(left, lr, left_keys, right, rr, right_keys)) {
        EmitJoinedRow(left, lr, right, rr, right_only, &out);
      }
    }
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table SortMergeJoin(const Table& left, const Table& right, ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  JoinSharedColumns(left, right, &left_keys, &right_keys, &right_only);
  S2RDF_CHECK(!left_keys.empty());
  Table out = JoinOutputSchema(left, right, right_only);

  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  // Sort row indices of both sides by their key tuples.
  auto key_less = [](const Table& t, const std::vector<int>& keys) {
    return [&t, &keys](size_t a, size_t b) {
      for (int c : keys) {
        TermId va = t.At(a, static_cast<size_t>(c));
        TermId vb = t.At(b, static_cast<size_t>(c));
        if (va != vb) return va < vb;
      }
      return false;
    };
  };
  std::vector<size_t> lrows;
  std::vector<size_t> rrows;
  for (size_t r = 0; r < left.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      ctx->metrics.intermediate_tuples += out.NumRows();
      return out;  // Empty; ExecutePlan reports the interrupt.
    }
    if (!RowKeyHasNull(left, r, left_keys)) lrows.push_back(r);
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      ctx->metrics.intermediate_tuples += out.NumRows();
      return out;
    }
    if (!RowKeyHasNull(right, r, right_keys)) rrows.push_back(r);
  }
  std::sort(lrows.begin(), lrows.end(), key_less(left, left_keys));
  std::sort(rrows.begin(), rrows.end(), key_less(right, right_keys));

  auto compare_keys = [&](size_t lrow, size_t rrow) {
    for (size_t i = 0; i < left_keys.size(); ++i) {
      TermId lv = left.At(lrow, static_cast<size_t>(left_keys[i]));
      TermId rv = right.At(rrow, static_cast<size_t>(right_keys[i]));
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };

  // Merge phase: one check per kInterruptCheckRows merge steps or
  // emitted rows, whichever comes first (equal-key runs can emit a
  // cross product far larger than the step count).
  size_t li = 0;
  size_t ri = 0;
  size_t since_check = 0;
  bool interrupted = false;
  while (li < lrows.size() && ri < rrows.size()) {
    if (++since_check >= kInterruptCheckRows) {
      since_check = 0;
      if (ctx != nullptr && ctx->CheckInterrupt()) {
        interrupted = true;  // Partial output; ExecutePlan reports why.
        break;
      }
    }
    int c = compare_keys(lrows[li], rrows[ri]);
    if (c < 0) {
      ++li;
      continue;
    }
    if (c > 0) {
      ++ri;
      continue;
    }
    // Equal-key runs: cross product of the two runs.
    size_t lend = li;
    while (lend + 1 < lrows.size() &&
           compare_keys(lrows[lend + 1], rrows[ri]) == 0) {
      ++lend;
    }
    size_t rend = ri;
    while (rend + 1 < rrows.size() &&
           compare_keys(lrows[li], rrows[rend + 1]) == 0) {
      ++rend;
    }
    for (size_t l = li; l <= lend && !interrupted; ++l) {
      for (size_t r = ri; r <= rend; ++r) {
        if (++since_check >= kInterruptCheckRows) {
          since_check = 0;
          if (ctx != nullptr && ctx->CheckInterrupt()) {
            interrupted = true;
            break;
          }
        }
        EmitJoinedRow(left, lrows[l], right, rrows[r], right_only, &out);
      }
    }
    if (interrupted) break;
    li = lend + 1;
    ri = rend + 1;
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table SemiJoin(const Table& left, int left_col, const Table& right,
               int right_col, ExecContext* ctx) {
  S2RDF_CHECK(left_col >= 0 && static_cast<size_t>(left_col) < left.NumColumns());
  S2RDF_CHECK(right_col >= 0 &&
              static_cast<size_t>(right_col) < right.NumColumns());
  // Metered like every other join: the Fig. 8/Fig. 12 model charges the
  // logical comparison space |L|x|R|, not the hash-accelerated probe
  // count (see exec_context.h). Charged before the build loop so an
  // interrupted run still reports the same work estimate as serial.
  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }
  std::unordered_set<TermId> keys;
  keys.reserve(right.NumRows());
  const std::vector<TermId>& right_vals =
      right.Column(static_cast<size_t>(right_col));
  for (size_t r = 0; r < right_vals.size(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      Table out(left.column_names());
      return out;  // Empty; ExecutePlan reports the interrupt.
    }
    if (right_vals[r] != kNullTermId) keys.insert(right_vals[r]);
  }
  Table out(left.column_names());
  for (size_t r = 0; r < left.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    if (keys.contains(left.At(r, static_cast<size_t>(left_col)))) {
      out.AppendRowFrom(left, r);
    }
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table LeftOuterJoin(const Table& left, const Table& right,
                    const Expr* condition, const rdf::Dictionary& dict,
                    ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  JoinSharedColumns(left, right, &left_keys, &right_keys, &right_only);
  Table out = JoinOutputSchema(left, right, right_only);

  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  std::unordered_map<uint64_t, std::vector<size_t>> build;
  build.reserve(right.NumRows());
  for (size_t rr = 0; rr < right.NumRows(); ++rr) {
    if ((rr % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      ctx->metrics.intermediate_tuples += out.NumRows();
      return out;  // Empty; ExecutePlan reports the interrupt.
    }
    if (RowKeyHasNull(right, rr, right_keys)) continue;
    build[RowKeyHash(right, rr, right_keys)].push_back(rr);
  }

  for (size_t lr = 0; lr < left.NumRows(); ++lr) {
    if ((lr % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    size_t before = out.NumRows();
    if (!left_keys.empty() || right.NumRows() > 0) {
      if (left_keys.empty()) {
        // OPTIONAL with no shared variables: every right row is a
        // candidate (cross semantics).
        for (size_t rr = 0; rr < right.NumRows(); ++rr) {
          EmitJoinedRow(left, lr, right, rr, right_only, &out);
        }
      } else if (!RowKeyHasNull(left, lr, left_keys)) {
        auto it = build.find(RowKeyHash(left, lr, left_keys));
        if (it != build.end()) {
          for (size_t rr : it->second) {
            if (RowKeysEqual(left, lr, left_keys, right, rr, right_keys)) {
              EmitJoinedRow(left, lr, right, rr, right_only, &out);
            }
          }
        }
      }
    }
    // Apply the OPTIONAL-scoped filter on the candidate matches.
    if (condition != nullptr && out.NumRows() > before) {
      ExprEvaluator eval(*condition, out, dict);
      Table kept(out.column_names());
      for (size_t r = 0; r < before; ++r) kept.AppendRowFrom(out, r);
      for (size_t r = before; r < out.NumRows(); ++r) {
        if (eval.Keep(r)) kept.AppendRowFrom(out, r);
      }
      out = std::move(kept);
    }
    if (out.NumRows() == before) {
      // No surviving match: emit the left row padded with nulls.
      std::vector<TermId> row;
      row.reserve(out.NumColumns());
      for (size_t c = 0; c < left.NumColumns(); ++c) {
        row.push_back(left.At(lr, c));
      }
      for (size_t i = 0; i < right_only.size(); ++i) {
        row.push_back(kNullTermId);
      }
      out.AppendRow(row);
    }
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table UnionAll(const Table& a, const Table& b, ExecContext* ctx) {
  std::vector<std::string> names = a.column_names();
  for (const std::string& name : b.column_names()) {
    if (a.ColumnIndex(name) < 0) names.push_back(name);
  }
  Table out(names);
  out.Reserve(a.NumRows() + b.NumRows());
  bool interrupted = false;
  for (size_t r = 0; r < a.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      interrupted = true;  // Partial output; ExecutePlan reports why.
      break;
    }
    std::vector<TermId> row;
    row.reserve(names.size());
    for (const std::string& name : names) {
      int c = a.ColumnIndex(name);
      row.push_back(c < 0 ? kNullTermId : a.At(r, static_cast<size_t>(c)));
    }
    out.AppendRow(row);
  }
  for (size_t r = 0; !interrupted && r < b.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;
    }
    std::vector<TermId> row;
    row.reserve(names.size());
    for (const std::string& name : names) {
      int c = b.ColumnIndex(name);
      row.push_back(c < 0 ? kNullTermId : b.At(r, static_cast<size_t>(c)));
    }
    out.AppendRow(row);
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table Distinct(const Table& t, ExecContext* ctx) {
  // Hash-based dedup with full-row verification via a bucket of row ids.
  std::unordered_multimap<uint64_t, size_t> seen;
  Table out(t.column_names());
  std::vector<int> all_cols(t.NumColumns());
  for (size_t i = 0; i < t.NumColumns(); ++i) all_cols[i] = static_cast<int>(i);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    uint64_t h = RowKeyHash(t, r, all_cols);
    bool duplicate = false;
    auto [begin, end] = seen.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      if (RowKeysEqual(t, r, all_cols, t, it->second, all_cols)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen.emplace(h, r);
      out.AppendRowFrom(t, r);
    }
  }
  if (ctx != nullptr) {
    ctx->AccountShuffle(t.NumRows());
    ctx->metrics.intermediate_tuples += out.NumRows();
  }
  return out;
}

Table OrderBy(const Table& t, const std::vector<SortKey>& keys,
              const rdf::Dictionary& dict, ExecContext* ctx) {
  // Decode cache: TermId -> typed Value (ids repeat heavily).
  std::unordered_map<TermId, Value> cache;
  auto value_of = [&](TermId id) -> const Value& {
    auto it = cache.find(id);
    if (it != cache.end()) return it->second;
    Value v =
        id == kNullTermId ? Value() : ValueFromCanonicalTerm(dict.Decode(id));
    return cache.emplace(id, std::move(v)).first->second;
  };

  std::vector<std::pair<int, bool>> key_cols;
  for (const SortKey& key : keys) {
    int c = t.ColumnIndex(key.column);
    if (c >= 0) key_cols.emplace_back(c, key.ascending);
  }

  // Interruptible warmup: decode every sort-key value up front. The
  // decode cost dominates OrderBy, so checking the deadline here bounds
  // the abort latency; the comparator below never reads the clock
  // (returning inconsistent answers mid-sort would break strict weak
  // ordering).
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      return Table(t.column_names());  // ExecutePlan reports why.
    }
    for (const auto& [col, asc] : key_cols) {
      value_of(t.At(r, static_cast<size_t>(col)));
    }
  }

  std::vector<size_t> order(t.NumRows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (const auto& [col, asc] : key_cols) {
      TermId ia = t.At(a, static_cast<size_t>(col));
      TermId ib = t.At(b, static_cast<size_t>(col));
      if (ia == ib) continue;
      bool comparable = true;
      int c = CompareValues(value_of(ia), value_of(ib), &comparable);
      if (c != 0) return asc ? c < 0 : c > 0;
    }
    return false;
  });

  Table out(t.column_names());
  out.Reserve(t.NumRows());
  for (size_t i = 0; i < order.size(); ++i) {
    if ((i % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    out.AppendRowFrom(t, order[i]);
  }
  return out;
}

Table Slice(const Table& t, uint64_t offset, uint64_t limit) {
  Table out(t.column_names());
  if (offset >= t.NumRows()) return out;
  uint64_t end = t.NumRows();
  if (limit != kNoLimit && offset + limit < end) end = offset + limit;
  for (uint64_t r = offset; r < end; ++r) {
    out.AppendRowFrom(t, static_cast<size_t>(r));
  }
  return out;
}

Table Project(const Table& t, const std::vector<std::string>& columns) {
  // Column store: projection is column selection, so copy whole
  // columns rather than assembling rows one at a time.
  std::vector<std::vector<TermId>> cols;
  cols.reserve(columns.size());
  for (const std::string& name : columns) {
    const int c = t.ColumnIndex(name);
    if (c < 0) {
      cols.emplace_back(t.NumRows(), kNullTermId);
    } else {
      cols.push_back(t.Column(static_cast<size_t>(c)));
    }
  }
  Table out(columns);
  out.AdoptColumns(std::move(cols));
  return out;
}

Table Filter(const Table& t, const Expr& expr, const rdf::Dictionary& dict,
             ExecContext* ctx) {
  ExprEvaluator eval(expr, t, dict);
  Table out(t.column_names());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    if (eval.Keep(r)) out.AppendRowFrom(t, r);
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

}  // namespace s2rdf::engine
