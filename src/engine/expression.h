#ifndef S2RDF_ENGINE_EXPRESSION_H_
#define S2RDF_ENGINE_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/table.h"
#include "engine/value.h"
#include "rdf/dictionary.h"

// Boolean filter expressions over solution mappings (table rows whose
// columns are SPARQL variables). These are the targets of SPARQL FILTER
// compilation. Evaluation follows SPARQL's three-valued logic: a type
// error makes the enclosing comparison "error", which FILTER treats as
// false, while && / || / ! propagate errors per the W3C semantics.

namespace s2rdf::engine {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// Tri-state result of expression evaluation.
enum class Truth { kFalse, kTrue, kError };

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  enum class Kind { kVar, kConst, kCompare, kAnd, kOr, kNot, kBound, kRegex };

  // Leaf: a SPARQL variable reference (name without '?').
  static ExprPtr Var(std::string name);
  // Leaf: a constant term in canonical N-Triples form.
  static ExprPtr Const(std::string canonical_term);
  // Comparison of two sub-expressions (both must be leaves).
  static ExprPtr Compare(CompareOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(ExprPtr left, ExprPtr right);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr operand);
  // BOUND(?var).
  static ExprPtr Bound(std::string var);
  // REGEX(?var, "pattern") with ECMAScript syntax, optional "i" flag.
  static ExprPtr Regex(std::string var, std::string pattern,
                       bool case_insensitive);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  CompareOp compare_op() const { return compare_op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  // Variables referenced anywhere in this expression.
  std::vector<std::string> ReferencedVariables() const;

  // Renders a SPARQL-ish debug form, e.g. "(?x > \"5\"^^xsd:int)".
  std::string ToString() const;

  ExprPtr Clone() const;

 private:
  friend class ExprEvaluator;
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;           // Variable name, constant text, or pattern.
  CompareOp compare_op_ = CompareOp::kEq;
  bool case_insensitive_ = false;
  ExprPtr left_;
  ExprPtr right_;
};

// Binds an expression to a table schema once, then evaluates rows cheaply.
class ExprEvaluator {
 public:
  // `table` and `dict` must outlive the evaluator.
  ExprEvaluator(const Expr& expr, const Table& table,
                const rdf::Dictionary& dict);

  // Evaluates the expression against row `row`.
  Truth Eval(size_t row) const;

  // FILTER keeps rows where the expression is exactly true.
  bool Keep(size_t row) const { return Eval(row) == Truth::kTrue; }

 private:
  Truth EvalNode(const Expr& node, size_t row) const;
  Value LeafValue(const Expr& node, size_t row) const;

  const Expr& expr_;
  const Table& table_;
  const rdf::Dictionary& dict_;
};

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_EXPRESSION_H_
