#ifndef S2RDF_ENGINE_OPERATORS_H_
#define S2RDF_ENGINE_OPERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "engine/exec_context.h"
#include "engine/expression.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

// Relational operators over columnar tables. These are the execution
// primitives the SPARQL compiler targets — the in-process analogue of the
// Spark SQL operators S2RDF generates. Every operator meters its inputs
// in the ExecContext (see exec_context.h for the accounting model).

namespace s2rdf::engine {

// Selection + projection applied during a base-table scan. This is the
// shape of the paper's TP2SQL output: bound triple-pattern positions
// become equality conditions, variables become renamed projections.
struct ScanSpec {
  // (base column index, required id): rows must match all conditions.
  std::vector<std::pair<int, TermId>> conditions;
  // (column index, column index): rows must have equal values (repeated
  // variable within one triple pattern, e.g. `?x :p ?x`).
  std::vector<std::pair<int, int>> equal_columns;
  // Columns that must not be null (property-table star scans).
  std::vector<int> not_null_columns;
  // Optional row-level filter bitmap (bit i = keep row i); must have
  // exactly NumRows() bits. This is the execution hook of the bit-vector
  // ExtVP representation: only surviving rows count as input, modeling a
  // selective columnar read driven by the bitmap index.
  const Bitmap* row_filter = nullptr;
  // (base column index, output column name): emitted in order.
  std::vector<std::pair<int, std::string>> projections;
};

// Scans `base`, applying `spec`. Meters |base| input tuples.
Table ScanSelectProject(const Table& base, const ScanSpec& spec,
                        ExecContext* ctx);

// Natural hash join on all shared column names. Degenerates to a cross
// product when no names are shared. Rows with a null (kNullTermId) join
// key never match. Meters |L|x|R| join comparisons and repartition
// shuffle of both inputs.
Table HashJoin(const Table& left, const Table& right, ExecContext* ctx);

// Natural sort-merge join on all shared column names — the local merge
// join H2RDF+ runs over its sorted indexes. Same bag as HashJoin (row
// order differs); requires at least one shared column.
Table SortMergeJoin(const Table& left, const Table& right, ExecContext* ctx);

// Left semi join: rows of `left` whose `left_col` value appears in
// `right_col` of `right`. The primitive behind ExtVP's precomputation.
Table SemiJoin(const Table& left, int left_col, const Table& right,
               int right_col, ExecContext* ctx);

// Natural left outer join (SPARQL OPTIONAL). Unmatched left rows emit
// nulls for right-only columns. An optional `condition` is evaluated on
// each joined candidate row (OPTIONAL { ... FILTER(...) } semantics).
Table LeftOuterJoin(const Table& left, const Table& right,
                    const Expr* condition, const rdf::Dictionary& dict,
                    ExecContext* ctx);

// Bag union; schemas are aligned by column name, missing columns become
// null. Column order follows `a` then new columns of `b`.
Table UnionAll(const Table& a, const Table& b, ExecContext* ctx);

// Removes duplicate rows (bag -> set).
Table Distinct(const Table& t, ExecContext* ctx);

struct SortKey {
  std::string column;
  bool ascending = true;
};

// Value-aware stable sort (numeric literals order numerically).
Table OrderBy(const Table& t, const std::vector<SortKey>& keys,
              const rdf::Dictionary& dict);

// OFFSET/LIMIT. `limit` == kNoLimit keeps all remaining rows.
inline constexpr uint64_t kNoLimit = ~0ull;
Table Slice(const Table& t, uint64_t offset, uint64_t limit);

// Keeps exactly `columns` in the given order. Unknown names yield
// all-null columns (unbound projection variables).
Table Project(const Table& t, const std::vector<std::string>& columns);

// FILTER: keeps rows where `expr` evaluates to true.
Table Filter(const Table& t, const Expr& expr, const rdf::Dictionary& dict,
             ExecContext* ctx);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_OPERATORS_H_
