#ifndef S2RDF_ENGINE_OPERATORS_H_
#define S2RDF_ENGINE_OPERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "engine/exec_context.h"
#include "engine/expression.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

// Relational operators over columnar tables. These are the execution
// primitives the SPARQL compiler targets — the in-process analogue of the
// Spark SQL operators S2RDF generates. Every operator meters its inputs
// in the ExecContext (see exec_context.h for the accounting model).

namespace s2rdf::engine {

// Selection + projection applied during a base-table scan. This is the
// shape of the paper's TP2SQL output: bound triple-pattern positions
// become equality conditions, variables become renamed projections.
struct ScanSpec {
  // (base column index, required id): rows must match all conditions.
  std::vector<std::pair<int, TermId>> conditions;
  // (column index, column index): rows must have equal values (repeated
  // variable within one triple pattern, e.g. `?x :p ?x`).
  std::vector<std::pair<int, int>> equal_columns;
  // Columns that must not be null (property-table star scans).
  std::vector<int> not_null_columns;
  // Optional row-level filter bitmap (bit i = keep row i); must have
  // exactly NumRows() bits. This is the execution hook of the bit-vector
  // ExtVP representation: only surviving rows count as input, modeling a
  // selective columnar read driven by the bitmap index.
  const Bitmap* row_filter = nullptr;
  // (base column index, output column name): emitted in order.
  std::vector<std::pair<int, std::string>> projections;
};

// Scans `base`, applying `spec`. Meters |base| input tuples.
Table ScanSelectProject(const Table& base, const ScanSpec& spec,
                        ExecContext* ctx);

// Row-range core of ScanSelectProject: appends every row of
// [begin, end) that passes `spec` to `out` (whose schema must already
// match spec.projections). Checks the interrupt state read-only every
// kInterruptCheckRows rows, so it is safe to call from task-pool
// workers (one call per morsel); returns false when it bailed out on
// an interrupt. Does not touch ctx->metrics.
bool ScanSelectProjectRange(const Table& base, const ScanSpec& spec,
                            size_t begin, size_t end, const ExecContext* ctx,
                            Table* out);

// Rows per vectorized sub-chunk. At most kInterruptCheckRows, so a
// per-chunk interrupt poll keeps the serial check cadence; small enough
// that a chunk's selection vector stays cache-resident.
inline constexpr size_t kVectorChunkRows = 2048;

// Vectorized twin of ScanSelectProjectRange with identical output and
// interrupt semantics: instead of testing every predicate row-at-a-time
// it builds a selection vector per kVectorChunkRows sub-chunk and prunes
// it one *column* at a time, then gathers the projected columns with one
// batched append (Table::AppendGather). Safe from task-pool workers;
// returns false when it bailed on an interrupt. Does not touch
// ctx->metrics.
bool ScanSelectProjectChunk(const Table& base, const ScanSpec& spec,
                            size_t begin, size_t end, const ExecContext* ctx,
                            Table* out);

// Natural hash join on all shared column names. Degenerates to a cross
// product when no names are shared. Rows with a null (kNullTermId) join
// key never match. Meters |L|x|R| join comparisons and repartition
// shuffle of both inputs. Output order is canonical: left rows in input
// order, each left row's matches in ascending right-row order —
// ParallelHashJoin reproduces exactly this sequence.
Table HashJoin(const Table& left, const Table& right, ExecContext* ctx);

// Natural sort-merge join on all shared column names — the local merge
// join H2RDF+ runs over its sorted indexes. Same bag as HashJoin (row
// order differs); requires at least one shared column.
Table SortMergeJoin(const Table& left, const Table& right, ExecContext* ctx);

// Left semi join: rows of `left` whose `left_col` value appears in
// `right_col` of `right`. The primitive behind ExtVP's precomputation.
Table SemiJoin(const Table& left, int left_col, const Table& right,
               int right_col, ExecContext* ctx);

// Natural left outer join (SPARQL OPTIONAL). Unmatched left rows emit
// nulls for right-only columns. An optional `condition` is evaluated on
// each joined candidate row (OPTIONAL { ... FILTER(...) } semantics).
Table LeftOuterJoin(const Table& left, const Table& right,
                    const Expr* condition, const rdf::Dictionary& dict,
                    ExecContext* ctx);

// Bag union; schemas are aligned by column name, missing columns become
// null. Column order follows `a` then new columns of `b`.
Table UnionAll(const Table& a, const Table& b, ExecContext* ctx);

// Removes duplicate rows (bag -> set).
Table Distinct(const Table& t, ExecContext* ctx);

struct SortKey {
  std::string column;
  bool ascending = true;
};

// Value-aware stable sort (numeric literals order numerically).
// Interruptible: the decode-cache warmup and the output gather check the
// deadline every kInterruptCheckRows rows (the comparator itself never
// reads the clock — that would break strict weak ordering); on an
// interrupt the partial/empty result is returned and ExecutePlan
// reports why.
Table OrderBy(const Table& t, const std::vector<SortKey>& keys,
              const rdf::Dictionary& dict, ExecContext* ctx = nullptr);

// OFFSET/LIMIT. `limit` == kNoLimit keeps all remaining rows.
inline constexpr uint64_t kNoLimit = ~0ull;
Table Slice(const Table& t, uint64_t offset, uint64_t limit);

// Keeps exactly `columns` in the given order. Unknown names yield
// all-null columns (unbound projection variables).
Table Project(const Table& t, const std::vector<std::string>& columns);

// FILTER: keeps rows where `expr` evaluates to true.
Table Filter(const Table& t, const Expr& expr, const rdf::Dictionary& dict,
             ExecContext* ctx);

// --- Row-key helpers shared with the parallel execution layer ---
// (engine/parallel.cc, engine/parallel_join.cc build on the exact same
// hash so serial and parallel plans partition rows identically).

// Hashes the values of `row` at `cols` in `table`.
uint64_t RowKeyHash(const Table& table, size_t row,
                    const std::vector<int>& cols);

bool RowKeysEqual(const Table& a, size_t row_a, const std::vector<int>& cols_a,
                  const Table& b, size_t row_b,
                  const std::vector<int>& cols_b);

bool RowKeyHasNull(const Table& t, size_t row, const std::vector<int>& cols);

// Shared-column discovery for natural joins: fills (left key indices,
// right key indices, right-only indices) in right-schema order.
void JoinSharedColumns(const Table& left, const Table& right,
                       std::vector<int>* left_keys,
                       std::vector<int>* right_keys,
                       std::vector<int>* right_only);

// Empty output table with `left`'s columns followed by `right_only`.
Table JoinOutputSchema(const Table& left, const Table& right,
                       const std::vector<int>& right_only);

// Appends left row `lrow` concatenated with `right_only` of `rrow`.
void EmitJoinedRow(const Table& left, size_t lrow, const Table& right,
                   size_t rrow, const std::vector<int>& right_only, Table* out);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_OPERATORS_H_
