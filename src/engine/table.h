#ifndef S2RDF_ENGINE_TABLE_H_
#define S2RDF_ENGINE_TABLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"

// Columnar in-memory table of dictionary-encoded term ids. This is the
// engine's equivalent of a cached Spark SQL DataFrame: a named-column
// relation whose cells are 32-bit ids resolved against an rdf::Dictionary.
// Column names double as SPARQL variable names during query execution, so
// natural joins join on shared names exactly like the paper's generated
// SQL does.

namespace s2rdf::engine {

using rdf::TermId;
using rdf::kNullTermId;

class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> column_names);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  // Index of the column named `name`, or -1 if absent.
  int ColumnIndex(std::string_view name) const;

  const std::vector<TermId>& Column(size_t i) const { return columns_[i]; }
  std::vector<TermId>& MutableColumn(size_t i) { return columns_[i]; }

  TermId At(size_t row, size_t col) const { return columns_[col][row]; }

  // Raw pointer to column i's ids (absolute row indexing). The unit the
  // chunked/vectorized kernels consume instead of per-row At() calls.
  const TermId* ColumnData(size_t i) const { return columns_[i].data(); }

  // Read-only chunked view of one column over rows [begin, end) — the
  // columnar chunk the vectorized inner loops (engine/parallel*.cc)
  // iterate. `data` is absolute-indexed: chunk.data[r] for r in
  // [begin, end).
  struct ColumnChunk {
    const TermId* data = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };
  ColumnChunk Chunk(size_t col, size_t begin, size_t end) const {
    return ColumnChunk{columns_[col].data(), begin, end};
  }

  // Replaces the table's data wholesale with `columns` (one vector per
  // column, all the same length). The column-store fast path for
  // operators that produce whole columns — Project — instead of
  // assembling rows.
  void AdoptColumns(std::vector<std::vector<TermId>> columns);

  // Appends one row; `values.size()` must equal NumColumns().
  void AppendRow(const std::vector<TermId>& values);
  void AppendRow(std::initializer_list<TermId> values);

  // Copies row `row` of `source` into this table. Schemas must have equal
  // width (names may differ; caller guarantees positional compatibility).
  void AppendRowFrom(const Table& source, size_t row);

  // Column-wise batch twin of AppendRowFrom: appends `source` rows
  // rows[0..count) in order, gathering each output column in one pass so
  // the inner loop touches a single column vector at a time.
  void AppendGather(const Table& source, const uint32_t* rows, size_t count);

  // Same gather, but output column j pulls from source column
  // source_cols[j] (for projection reorders). source_cols.size() must
  // equal NumColumns().
  void AppendGather(const Table& source, const std::vector<int>& source_cols,
                    const uint32_t* rows, size_t count);

  // Column-wise contiguous append of source rows [begin, end). Schemas
  // must have equal width (positional compatibility, as AppendRowFrom).
  void AppendRange(const Table& source, size_t begin, size_t end);

  void Reserve(size_t rows);

  // Renames column `i`.
  void SetColumnName(size_t i, std::string name);

  // Returns a copy whose columns are renamed to `names` (same arity).
  Table WithColumnNames(std::vector<std::string> names) const;

  // Approximate in-memory footprint, used by the shuffle meter.
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(num_rows_) * columns_.size() *
           sizeof(TermId);
  }

  // Sorts rows lexicographically by all columns (canonical form used to
  // compare result sets in tests).
  void SortRowsCanonical();

  // True if `a` and `b` have the same column names (order-sensitive) and
  // the same bag of rows.
  static bool SameBag(const Table& a, const Table& b);

  // Renders a bounded debug string: header plus up to `max_rows` rows of
  // raw ids (or decoded terms when `dict` is non-null).
  std::string DebugString(const rdf::Dictionary* dict = nullptr,
                          size_t max_rows = 20) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<TermId>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_TABLE_H_
