#include "engine/parallel.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/task_pool.h"

namespace s2rdf::engine {

namespace {

// Morsel count for an n-row input at `morsel` rows per morsel.
size_t MorselCount(size_t n, size_t morsel) {
  return (n + morsel - 1) / morsel;
}

// Owner-thread gather of one partial table: contiguous column-wise
// appends in kInterruptCheckRows strides, with a CheckInterrupt between
// strides (the serial row loop's cadence). Returns false when
// interrupted — partial output; ExecutePlan reports why.
bool AppendAllStrided(const Table& p, ExecContext* ctx, Table* out) {
  size_t r = 0;
  const size_t n = p.NumRows();
  while (r < n) {
    if (ctx != nullptr && ctx->CheckInterrupt()) return false;
    size_t take = std::min(n - r, kInterruptCheckRows);
    out->AppendRange(p, r, r + take);
    r += take;
  }
  return true;
}

}  // namespace

size_t MorselRowsFor(size_t rows, size_t columns, const ExecContext* ctx) {
  if (ctx != nullptr && ctx->morsel_rows > 0) {
    return std::max<size_t>(1, ctx->morsel_rows);
  }
  const size_t width = columns > 0 ? columns : 1;
  size_t m = kMorselTargetBytes / (width * sizeof(TermId));
  // Several morsels per worker so dynamic claiming can balance skew.
  const size_t workers = TaskPool::Shared()->ParallelismWidth();
  const size_t per_worker = rows / (4 * workers);
  if (per_worker > 0) m = std::min(m, per_worker);
  return std::clamp(m, kMinMorselRows, kMaxMorselRows);
}

size_t ParallelThreshold(const ExecContext* ctx) {
  return ctx != nullptr && ctx->parallel_threshold_rows > 0
             ? ctx->parallel_threshold_rows
             : kParallelRowThreshold;
}

Table ParallelScanSelectProject(const Table& base, const ScanSpec& spec,
                                ExecContext* ctx) {
  const size_t n = base.NumRows();
  if (n < ParallelThreshold(ctx)) return ScanSelectProject(base, spec, ctx);
  if (spec.row_filter != nullptr) {
    S2RDF_CHECK(spec.row_filter->size_bits() == n);
  }
  if (ctx != nullptr) {
    ctx->metrics.input_tuples += spec.row_filter != nullptr
                                     ? spec.row_filter->CountSetBits()
                                     : n;
  }
  std::vector<std::string> names;
  names.reserve(spec.projections.size());
  for (const auto& [col, name] : spec.projections) names.push_back(name);

  const size_t morsel = MorselRowsFor(n, base.NumColumns(), ctx);
  const size_t morsels = MorselCount(n, morsel);
  std::vector<Table> partial(morsels, Table(names));
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  TaskPool::Shared()->ParallelFor(morsels, [&](size_t m) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    size_t begin = m * morsel;
    size_t end = std::min(begin + morsel, n);
    if (!ScanSelectProjectChunk(base, spec, begin, end, ctx, &partial[m])) {
      interrupted.store(true, std::memory_order_relaxed);
    }
    if (spans) {
      ctx->task_spans->Record("scan morsel", m, ctx->profile_origin, t0,
                              MonotonicNow());
    }
  });

  Table out(std::move(names));
  if (interrupted.load(std::memory_order_relaxed)) {
    // Skip the gather — ExecutePlan discards partial results anyway.
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->metrics.intermediate_tuples += out.NumRows();
    }
    return out;
  }
  size_t total = 0;
  for (const Table& p : partial) total += p.NumRows();
  out.Reserve(total);
  // Morsel order is row order: the gathered table is byte-identical to
  // the serial scan's output.
  for (const Table& p : partial) {
    if (!AppendAllStrided(p, ctx, &out)) break;
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table ParallelFilter(const Table& t, const Expr& expr,
                     const rdf::Dictionary& dict, ExecContext* ctx) {
  const size_t n = t.NumRows();
  if (n < ParallelThreshold(ctx)) return Filter(t, expr, dict, ctx);
  const size_t morsel = MorselRowsFor(n, t.NumColumns(), ctx);
  const size_t morsels = MorselCount(n, morsel);

  // When every variable the expression references resolves to the same
  // table column, the verdict is a pure function of that column's id:
  // morsels can memoize verdicts per distinct id instead of re-decoding
  // and re-parsing the term for every row (the dominant filter cost).
  // Unprojected variables contribute a constant (unbound) and do not
  // break the purity argument.
  int memo_col = -1;
  for (const std::string& var : expr.ReferencedVariables()) {
    int c = t.ColumnIndex(var);
    if (c < 0) continue;
    if (memo_col >= 0 && c != memo_col) {
      memo_col = -1;
      break;
    }
    memo_col = c;
  }
  // Dictionary reads below take a shared lock; nothing encodes during a
  // filter, so the size is stable for the whole operator.
  const size_t memo_size = memo_col >= 0 ? dict.size() : 0;

  std::vector<std::vector<uint32_t>> keep(morsels);
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  TaskPool::Shared()->ParallelFor(morsels, [&](size_t m) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    size_t begin = m * morsel;
    size_t end = std::min(begin + morsel, n);
    // The evaluator is bound per morsel (cheap: it only resolves column
    // indices); Eval itself is const and dictionary reads take a shared
    // lock, so morsels evaluate concurrently.
    ExprEvaluator eval(expr, t, dict);
    std::vector<uint32_t>& rows = keep[m];
    if (memo_col >= 0) {
      const TermId* v = t.ColumnData(static_cast<size_t>(memo_col));
      // 0 = unseen, 1 = keep, 2 = drop; kNullTermId is out of dictionary
      // range and gets its own slot.
      std::vector<uint8_t> memo(memo_size, 0);
      uint8_t null_verdict = 0;
      for (size_t cb = begin; cb < end; cb += kInterruptCheckRows) {
        if (ctx != nullptr && ctx->InterruptRequested()) {
          interrupted.store(true, std::memory_order_relaxed);
          break;
        }
        const size_t ce = std::min(cb + kInterruptCheckRows, end);
        for (size_t r = cb; r < ce; ++r) {
          uint8_t* slot = v[r] < memo_size ? &memo[v[r]] : &null_verdict;
          if (*slot == 0) *slot = eval.Keep(r) ? 1 : 2;
          if (*slot == 1) rows.push_back(static_cast<uint32_t>(r));
        }
      }
    } else {
      for (size_t r = begin; r < end; ++r) {
        if (((r - begin) % kInterruptCheckRows) == 0 && ctx != nullptr &&
            ctx->InterruptRequested()) {
          interrupted.store(true, std::memory_order_relaxed);
          break;
        }
        if (eval.Keep(r)) rows.push_back(static_cast<uint32_t>(r));
      }
    }
    if (spans) {
      ctx->task_spans->Record("filter morsel", m, ctx->profile_origin, t0,
                              MonotonicNow());
    }
  });

  Table out(t.column_names());
  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->metrics.intermediate_tuples += out.NumRows();
    }
    return out;
  }
  size_t total = 0;
  for (const auto& rows : keep) total += rows.size();
  out.Reserve(total);
  // Morsel order is row order; survivors batch-append in ascending row
  // order — the serial Filter's exact output.
  bool gather_interrupted = false;
  for (const auto& rows : keep) {
    size_t i = 0;
    while (i < rows.size()) {
      if (ctx != nullptr && ctx->CheckInterrupt()) {
        gather_interrupted = true;
        break;
      }
      size_t take = std::min(rows.size() - i, kInterruptCheckRows);
      out.AppendGather(t, rows.data() + i, take);
      i += take;
    }
    if (gather_interrupted) break;
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

Table ParallelDistinct(const Table& t, ExecContext* ctx) {
  const size_t n = t.NumRows();
  if (n < ParallelThreshold(ctx)) return Distinct(t, ctx);
  TaskPool* pool = TaskPool::Shared();
  std::vector<int> all_cols(t.NumColumns());
  for (size_t i = 0; i < t.NumColumns(); ++i) all_cols[i] = static_cast<int>(i);

  // Pass 1: row hashes, morsel-parallel and column-at-a-time — the hash
  // lane is seeded for the whole sub-chunk, then each column folds in
  // with one tight pass over its contiguous ids (same per-row value as
  // RowKeyHash).
  const size_t morsel = MorselRowsFor(n, t.NumColumns(), ctx);
  std::vector<uint64_t> hashes(n);
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  pool->ParallelFor(MorselCount(n, morsel), [&](size_t m) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    size_t begin = m * morsel;
    size_t end = std::min(begin + morsel, n);
    for (size_t cb = begin; cb < end; cb += kInterruptCheckRows) {
      if (ctx != nullptr && ctx->InterruptRequested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      const size_t ce = std::min(cb + kInterruptCheckRows, end);
      for (size_t r = cb; r < ce; ++r) hashes[r] = 0x9e3779b97f4a7c15ULL;
      for (size_t c = 0; c < t.NumColumns(); ++c) {
        const TermId* v = t.ColumnData(c);
        for (size_t r = cb; r < ce; ++r) {
          hashes[r] = HashCombine(hashes[r], v[r]);
        }
      }
    }
    if (spans) {
      ctx->task_spans->Record("distinct hash morsel", m, ctx->profile_origin,
                              t0, MonotonicNow());
    }
  });

  Table out(t.column_names());
  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->AccountShuffle(n);
      ctx->metrics.intermediate_tuples += out.NumRows();
    }
    return out;
  }

  // Pass 2: hash-partitioned dedup. Equal rows hash equal, so every
  // duplicate set lives wholly inside one partition; each worker keeps
  // the first occurrence (ascending row scan) of its partition's rows.
  const size_t parts = pool->ParallelismWidth();
  std::vector<std::vector<uint32_t>> keep(parts);
  pool->ParallelFor(parts, [&](size_t w) {
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    size_t since_check = 0;
    for (size_t r = 0; r < n; ++r) {
      if (++since_check >= kInterruptCheckRows) {
        since_check = 0;
        if (ctx != nullptr && ctx->InterruptRequested()) {
          interrupted.store(true, std::memory_order_relaxed);
          break;
        }
      }
      if (hashes[r] % parts != w) continue;
      std::vector<size_t>& bucket = seen[hashes[r]];
      bool duplicate = false;
      for (size_t prev : bucket) {
        if (RowKeysEqual(t, r, all_cols, t, prev, all_cols)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        bucket.push_back(r);
        keep[w].push_back(static_cast<uint32_t>(r));
      }
    }
    if (spans) {
      ctx->task_spans->Record("distinct partition", w, ctx->profile_origin,
                              t0, MonotonicNow());
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->AccountShuffle(n);
      ctx->metrics.intermediate_tuples += out.NumRows();
    }
    return out;
  }

  // Merge ascending: the union of partition-local first occurrences is
  // exactly the serial first-occurrence set, and ascending row order is
  // the serial emission order.
  std::vector<uint32_t> rows;
  size_t total = 0;
  for (const auto& k : keep) total += k.size();
  rows.reserve(total);
  for (const auto& k : keep) rows.insert(rows.end(), k.begin(), k.end());
  std::sort(rows.begin(), rows.end());

  out.Reserve(rows.size());
  size_t i = 0;
  while (i < rows.size()) {
    if (ctx != nullptr && ctx->CheckInterrupt()) {
      break;  // Partial; ExecutePlan reports the interrupt.
    }
    size_t take = std::min(rows.size() - i, kInterruptCheckRows);
    out.AppendGather(t, rows.data() + i, take);
    i += take;
  }
  if (ctx != nullptr) {
    ctx->AccountShuffle(n);
    ctx->metrics.intermediate_tuples += out.NumRows();
  }
  return out;
}

Table ParallelOrderBy(const Table& t, const std::vector<SortKey>& keys,
                      const rdf::Dictionary& dict, ExecContext* ctx) {
  const size_t n = t.NumRows();
  std::vector<std::pair<int, bool>> key_cols;
  for (const SortKey& key : keys) {
    int c = t.ColumnIndex(key.column);
    if (c >= 0) key_cols.emplace_back(c, key.ascending);
  }
  if (n < ParallelThreshold(ctx) || key_cols.empty()) {
    return OrderBy(t, keys, dict, ctx);
  }
  TaskPool* pool = TaskPool::Shared();

  // Phase 1 (the dominant cost): decode every sort-key term, morsel-
  // parallel into per-morsel caches (Dictionary::Decode is
  // shared-lock-safe), merged into one map that is read-only from here
  // on — the chunk sorts below can then share it without locking.
  const size_t morsel = MorselRowsFor(n, key_cols.size(), ctx);
  const size_t morsels = MorselCount(n, morsel);
  std::vector<std::unordered_map<TermId, Value>> partial_cache(morsels);
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  pool->ParallelFor(morsels, [&](size_t m) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    size_t begin = m * morsel;
    size_t end = std::min(begin + morsel, n);
    std::unordered_map<TermId, Value>& cache = partial_cache[m];
    for (size_t r = begin; r < end && !interrupted.load(
                                          std::memory_order_relaxed);
         ++r) {
      if (((r - begin) % kInterruptCheckRows) == 0 && ctx != nullptr &&
          ctx->InterruptRequested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      for (const auto& [col, asc] : key_cols) {
        TermId id = t.At(r, static_cast<size_t>(col));
        if (cache.find(id) != cache.end()) continue;
        cache.emplace(id, id == kNullTermId
                              ? Value()
                              : ValueFromCanonicalTerm(dict.Decode(id)));
      }
    }
    if (spans) {
      ctx->task_spans->Record("sort decode morsel", m, ctx->profile_origin,
                              t0, MonotonicNow());
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) ctx->CheckInterrupt();
    return Table(t.column_names());
  }
  std::unordered_map<TermId, Value> values;
  for (auto& cache : partial_cache) values.merge(cache);

  auto less = [&](size_t a, size_t b) {
    for (const auto& [col, asc] : key_cols) {
      TermId ia = t.At(a, static_cast<size_t>(col));
      TermId ib = t.At(b, static_cast<size_t>(col));
      if (ia == ib) continue;
      bool comparable = true;
      int c = CompareValues(values.find(ia)->second, values.find(ib)->second,
                            &comparable);
      if (c != 0) return asc ? c < 0 : c > 0;
    }
    return false;
  };

  // Phase 2: contiguous chunks, each stable-sorted in parallel. Like
  // the serial stable_sort, the sort itself is not interruptible (a
  // comparator that reads the clock would break strict weak ordering);
  // each chunk checks once before sorting.
  const size_t chunk_count = std::min(pool->ParallelismWidth(), morsels);
  const size_t chunk_rows = (n + chunk_count - 1) / chunk_count;
  std::vector<std::vector<size_t>> chunks(chunk_count);
  pool->ParallelFor(chunk_count, [&](size_t c) {
    if (ctx != nullptr && ctx->InterruptRequested()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    size_t begin = c * chunk_rows;
    size_t end = std::min(begin + chunk_rows, n);
    std::vector<size_t>& order = chunks[c];
    order.resize(end - begin);
    for (size_t i = 0; i < order.size(); ++i) order[i] = begin + i;
    std::stable_sort(order.begin(), order.end(), less);
    if (spans) {
      ctx->task_spans->Record("sort chunk", c, ctx->profile_origin, t0,
                              MonotonicNow());
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) ctx->CheckInterrupt();
    return Table(t.column_names());
  }

  // Phase 3: k-way merge. Chunks are contiguous input ranges and each
  // is stable-sorted; breaking ties toward the earliest chunk therefore
  // reproduces a full stable_sort — the output is byte-identical to the
  // serial OrderBy.
  Table out(t.column_names());
  out.Reserve(n);
  std::vector<size_t> pos(chunk_count, 0);
  for (size_t emitted = 0; emitted < n; ++emitted) {
    if ((emitted % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial; ExecutePlan reports the interrupt.
    }
    size_t best = chunk_count;
    for (size_t c = 0; c < chunk_count; ++c) {
      if (pos[c] >= chunks[c].size()) continue;
      if (best == chunk_count || less(chunks[c][pos[c]], chunks[best][pos[best]])) {
        best = c;
      }
    }
    out.AppendRowFrom(t, chunks[best][pos[best]]);
    ++pos[best];
  }
  return out;
}

}  // namespace s2rdf::engine
