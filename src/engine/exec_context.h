#ifndef S2RDF_ENGINE_EXEC_CONTEXT_H_
#define S2RDF_ENGINE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Execution context for the partitioned-execution model.
//
// The paper attributes ExtVP's speedups to two mechanisms: (1) smaller
// query *input* (fewer base-table tuples read and shipped over the
// network), and (2) fewer join comparisons (Fig. 8, Fig. 12). Both are
// engine-independent, so in addition to wall-clock the engine meters them
// directly: every operator accounts its inputs against the metrics below.
// Shuffle volume follows the standard repartition-join model — with P
// partitions, a fraction (P-1)/P of each join input crosses the network.

namespace s2rdf::engine {

struct ExecMetrics {
  // Tuples scanned from base (stored) tables — the paper's "input size".
  uint64_t input_tuples = 0;
  // Tuples produced by intermediate operators (join/filter outputs).
  uint64_t intermediate_tuples = 0;
  // Pairwise join comparisons, counted as |L|x|R| per join, matching the
  // accounting of the paper's Fig. 8 / Fig. 12.
  uint64_t join_comparisons = 0;
  // Tuples crossing partitions under hash repartitioning.
  uint64_t shuffled_tuples = 0;
  // Result tuples of the final operator.
  uint64_t output_tuples = 0;
  // High-water mark of simultaneously-live materialized Table bytes
  // (operator inputs + output at each operator boundary). A resource
  // gauge, not a flow counter: identical between serial and parallel
  // execution because both materialize the same operator results.
  uint64_t peak_table_bytes = 0;

  void Clear() { *this = ExecMetrics(); }

  // The growth of the counters since `before` was snapshotted (profiling
  // attributes metric deltas to the operator subtree that ran between
  // the two snapshots).
  ExecMetrics DeltaSince(const ExecMetrics& before) const {
    ExecMetrics d;
    d.input_tuples = input_tuples - before.input_tuples;
    d.intermediate_tuples = intermediate_tuples - before.intermediate_tuples;
    d.join_comparisons = join_comparisons - before.join_comparisons;
    d.shuffled_tuples = shuffled_tuples - before.shuffled_tuples;
    d.output_tuples = output_tuples - before.output_tuples;
    // Peak is a high-water mark: the delta is how much this subtree
    // raised it (0 when it stayed under the prior peak).
    d.peak_table_bytes = peak_table_bytes - before.peak_table_bytes;
    return d;
  }

  ExecMetrics& operator+=(const ExecMetrics& other) {
    input_tuples += other.input_tuples;
    intermediate_tuples += other.intermediate_tuples;
    join_comparisons += other.join_comparisons;
    shuffled_tuples += other.shuffled_tuples;
    output_tuples += other.output_tuples;
    // Merging two queries' metrics keeps the larger high-water mark.
    if (other.peak_table_bytes > peak_table_bytes) {
      peak_table_bytes = other.peak_table_bytes;
    }
    return *this;
  }

  std::string ToString() const {
    return "input=" + std::to_string(input_tuples) +
           " intermediate=" + std::to_string(intermediate_tuples) +
           " comparisons=" + std::to_string(join_comparisons) +
           " shuffled=" + std::to_string(shuffled_tuples) +
           " output=" + std::to_string(output_tuples) +
           " peak_bytes=" + std::to_string(peak_table_bytes);
  }
};

// One executed plan operator (EXPLAIN ANALYZE entry). `millis` is
// inclusive of children; `depth` reconstructs the tree shape.
struct OperatorProfile {
  std::string label;
  int depth = 0;
  uint64_t output_rows = 0;
  double millis = 0.0;
  // Scan detail (empty/defaulted for non-scan operators): the table
  // Algorithm 1 chose, its layout family ("ExtVP", "VP", "TT",
  // "ExtVP-bitmap") and the catalog selectivity factor behind the
  // choice. `degraded` marks a quarantine-forced superset substitute.
  std::string table;
  std::string layout;
  double sf = 1.0;
  bool degraded = false;
  // Growth of the query's ExecMetrics while this operator (inclusive of
  // its children) ran.
  ExecMetrics delta;
  // Start offset relative to ExecContext::profile_origin, milliseconds.
  double start_ms = 0.0;
  // The optimizer's row estimate for this operator; < 0 means "not
  // annotated" (e.g. operators above the BGP pipeline).
  double estimated_rows = -1.0;
};

// One morsel/partition task executed while profiling a parallel
// operator. `index` is the morsel or partition number (rendered as the
// trace lane), not a thread id — task-to-thread assignment is pool
// scheduling noise, the partition of work is what the plan determines.
struct TaskSpan {
  std::string label;
  size_t index = 0;
  double start_ms = 0.0;
  double millis = 0.0;
};

// Thread-safe collector for TaskSpans. Owned by whoever owns the query
// (e.g. core::S2Rdf::ExecuteInternal) and attached to the ExecContext by
// pointer, keeping the context itself copyable. Pool workers append
// concurrently; one lock per morsel (>= thousands of rows) is noise.
class TaskSpanSink {
 public:
  void Record(std::string label, size_t index, MonotonicTime origin,
              MonotonicTime start, MonotonicTime end) {
    TaskSpan span;
    span.label = std::move(label);
    span.index = index;
    span.start_ms =
        std::chrono::duration<double, std::milli>(start - origin).count();
    span.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    MutexLock lock(&mu_);
    spans_.push_back(std::move(span));
  }

  // Drains the collected spans (single-threaded, after execution).
  std::vector<TaskSpan> Take() {
    MutexLock lock(&mu_);
    return std::move(spans_);
  }

 private:
  Mutex mu_;
  std::vector<TaskSpan> spans_ S2RDF_GUARDED_BY(mu_);
};

// Operators consult the interrupt state every this many rows, keeping
// the clock read off the per-row hot path.
inline constexpr size_t kInterruptCheckRows = 4096;

struct ExecContext {
  // Simulated cluster width; 9 workers matches the paper's testbed.
  int num_partitions = 9;
  // When set, large joins execute partition-parallel on num_partitions
  // worker threads (see parallel_join.h) instead of the serial join.
  bool parallel_execution = false;
  // Rows per morsel for the parallel operators. 0 (the default) auto-
  // tunes from input width x rows (see MorselRowsFor in
  // engine/parallel.h); a positive value forces that many rows per
  // morsel (QueryOptions::morsel_rows / HTTP ?morsel=).
  size_t morsel_rows = 0;
  // Rows below which operators stay serial even under
  // parallel_execution. 0 = kParallelRowThreshold.
  size_t parallel_threshold_rows = 0;
  // EXPLAIN ANALYZE: record per-operator rows and timings.
  bool collect_profile = false;
  std::vector<OperatorProfile> profile;
  // Zero point for profile start offsets. Set by the query owner (or by
  // ExecutePlan on first use when left at the epoch default).
  MonotonicTime profile_origin{};
  // Optional sink for parallel-operator task spans; only consulted when
  // collect_profile is set. Owned by the caller.
  TaskSpanSink* task_spans = nullptr;
  // Request-scoped trace id assigned at admission (HTTP endpoint) or by
  // the embedding caller; empty when untraced. Carried here so operator
  // spans, slow-query lines and Chrome traces all share one id.
  std::string trace_id;
  ExecMetrics metrics;

  // True when parallel operators should record per-morsel TaskSpans.
  bool ProfileTasks() const {
    return collect_profile && task_spans != nullptr;
  }

  // --- Deadline & cancellation --------------------------------------------
  //
  // A context is owned by exactly one query. The executor checks the
  // interrupt state at every operator boundary and inside long row
  // loops; an interrupted operator abandons its partial output and
  // ExecutePlan returns `interrupt_status` (kDeadlineExceeded or
  // kCancelled) instead of a table.

  // Absolute deadline; only consulted when `has_deadline` is set.
  bool has_deadline = false;
  MonotonicTime deadline{};
  // Optional external cancellation signal (owned by the caller, may be
  // flipped from any thread).
  const std::atomic<bool>* cancel_flag = nullptr;
  // First observed interrupt reason; Ok while the query is healthy.
  // Written only by the query's own thread (via CheckInterrupt).
  Status interrupt_status;

  // Point-in-time check without recording: reads only immutable fields
  // and the atomic flag, so parallel-join worker threads may call it.
  bool InterruptRequested() const {
    if (cancel_flag != nullptr &&
        cancel_flag->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline && MonotonicNow() >= deadline;
  }

  // Checks and records the interrupt reason. Must be called from the
  // query's owning thread only (it writes interrupt_status).
  bool CheckInterrupt() {
    if (!interrupt_status.ok()) return true;
    if (cancel_flag != nullptr &&
        cancel_flag->load(std::memory_order_relaxed)) {
      interrupt_status = CancelledError("query cancelled");
      return true;
    }
    if (has_deadline && MonotonicNow() >= deadline) {
      interrupt_status = DeadlineExceededError("query deadline exceeded");
      return true;
    }
    return false;
  }

  // Raises the materialized-bytes high-water mark to `bytes` (the
  // simultaneously-live Table bytes at an operator boundary).
  void AccountTableBytes(uint64_t bytes) {
    if (bytes > metrics.peak_table_bytes) metrics.peak_table_bytes = bytes;
  }

  // Adds the repartition-shuffle cost of moving `tuples` rows.
  void AccountShuffle(uint64_t tuples) {
    if (num_partitions > 1) {
      metrics.shuffled_tuples +=
          tuples * static_cast<uint64_t>(num_partitions - 1) /
          static_cast<uint64_t>(num_partitions);
    }
  }
};

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_EXEC_CONTEXT_H_
