#include "engine/aggregate.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/task_pool.h"
#include "engine/operators.h"
#include "engine/parallel.h"
#include "engine/value.h"

namespace s2rdf::engine {

namespace {

constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";

// Running state of one aggregate within one group.
struct Accumulator {
  uint64_t count = 0;
  bool numeric_ok = true;   // All inputs numeric so far (SUM/AVG).
  bool all_int = true;      // Keep SUM integral when inputs are.
  long long int_sum = 0;
  double double_sum = 0.0;
  TermId extremum = kNullTermId;  // MIN/MAX/SAMPLE witness.
  std::unordered_set<TermId> distinct_terms;
};

using GroupMap = std::map<std::vector<TermId>, std::vector<Accumulator>>;

std::string RenderDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // Guarantee a decimal form that round-trips as xsd:double.
  std::string out = buf;
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

TermId EncodeInteger(long long v, rdf::Dictionary* dict) {
  return dict->Encode("\"" + std::to_string(v) + "\"^^<" +
                      std::string(kXsdInteger) + ">");
}

TermId EncodeDouble(double v, rdf::Dictionary* dict) {
  return dict->Encode("\"" + RenderDouble(v) + "\"^^<" +
                      std::string(kXsdDouble) + ">");
}

// Cache of typed values for numeric aggregates. Decode-only, so
// workers may each own one (Dictionary::Decode is shared-lock-safe).
class ValueCache {
 public:
  explicit ValueCache(const rdf::Dictionary& dict) : dict_(dict) {}

  const Value& Get(TermId id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
    Value v = id == kNullTermId ? Value()
                                : ValueFromCanonicalTerm(dict_.Decode(id));
    return cache_.emplace(id, std::move(v)).first->second;
  }

 private:
  const rdf::Dictionary& dict_;
  std::unordered_map<TermId, Value> cache_;
};

// Resolves key/input columns; fills `input_cols` with -1 for COUNT(*).
Status ResolveAggregateColumns(const Table& input,
                               const std::vector<std::string>& keys,
                               const std::vector<AggregateSpec>& specs,
                               std::vector<int>* key_cols,
                               std::vector<int>* input_cols) {
  for (const std::string& key : keys) {
    int c = input.ColumnIndex(key);
    if (c < 0) {
      return InvalidArgumentError("GROUP BY variable not in scope: ?" + key);
    }
    key_cols->push_back(c);
  }
  for (const AggregateSpec& spec : specs) {
    if (spec.fn == AggregateSpec::Fn::kCountStar) {
      input_cols->push_back(-1);
      continue;
    }
    int c = input.ColumnIndex(spec.input_var);
    if (c < 0) {
      return InvalidArgumentError("aggregate over unbound variable: ?" +
                                  spec.input_var);
    }
    input_cols->push_back(c);
  }
  return Status::Ok();
}

// Folds row `r` into its group's accumulators.
void AccumulateRow(const Table& input, size_t r,
                   const std::vector<AggregateSpec>& specs,
                   const std::vector<int>& input_cols,
                   std::vector<Accumulator>* accs, ValueCache* values) {
  for (size_t a = 0; a < specs.size(); ++a) {
    const AggregateSpec& spec = specs[a];
    Accumulator& acc = (*accs)[a];
    if (spec.fn == AggregateSpec::Fn::kCountStar) {
      ++acc.count;
      continue;
    }
    TermId id = input.At(r, static_cast<size_t>(input_cols[a]));
    if (id == kNullTermId) continue;  // Unbound bindings are skipped.
    if (spec.distinct && !acc.distinct_terms.insert(id).second) continue;
    ++acc.count;
    switch (spec.fn) {
      case AggregateSpec::Fn::kCount:
        break;
      case AggregateSpec::Fn::kSum:
      case AggregateSpec::Fn::kAvg: {
        const Value& v = values->Get(id);
        if (!v.is_numeric()) {
          acc.numeric_ok = false;
          break;
        }
        if (v.kind == ValueKind::kInt) {
          acc.int_sum += v.int_value;
          acc.double_sum += static_cast<double>(v.int_value);
        } else {
          acc.all_int = false;
          acc.double_sum += v.double_value;
        }
        break;
      }
      case AggregateSpec::Fn::kMin:
      case AggregateSpec::Fn::kMax: {
        if (acc.extremum == kNullTermId) {
          acc.extremum = id;
          break;
        }
        bool comparable = true;
        int c = CompareValues(values->Get(id), values->Get(acc.extremum),
                              &comparable);
        bool better = spec.fn == AggregateSpec::Fn::kMin ? c < 0 : c > 0;
        if (better) acc.extremum = id;
        break;
      }
      case AggregateSpec::Fn::kSample:
        if (acc.extremum == kNullTermId) acc.extremum = id;
        break;
      case AggregateSpec::Fn::kCountStar:
        break;
    }
  }
}

// Emits one row per group (std::map iteration = deterministic key
// order). Mints literals, so single-threaded by construction. Checks
// the interrupt state every kInterruptCheckRows groups.
Table EmitGroups(const GroupMap& groups,
                 const std::vector<std::string>& keys,
                 const std::vector<AggregateSpec>& specs,
                 rdf::Dictionary* dict, ExecContext* ctx) {
  std::vector<std::string> names = keys;
  for (const AggregateSpec& spec : specs) names.push_back(spec.output_name);
  Table out(names);
  size_t emitted = 0;
  for (const auto& [key, accs] : groups) {
    if ((emitted++ % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial output; ExecutePlan reports the interrupt.
    }
    std::vector<TermId> row = key;
    for (size_t a = 0; a < specs.size(); ++a) {
      const AggregateSpec& spec = specs[a];
      const Accumulator& acc = accs[a];
      switch (spec.fn) {
        case AggregateSpec::Fn::kCountStar:
        case AggregateSpec::Fn::kCount:
          row.push_back(EncodeInteger(static_cast<long long>(acc.count),
                                      dict));
          break;
        case AggregateSpec::Fn::kSum:
          if (!acc.numeric_ok) {
            row.push_back(kNullTermId);  // Type error -> unbound.
          } else if (acc.all_int) {
            row.push_back(EncodeInteger(acc.int_sum, dict));
          } else {
            row.push_back(EncodeDouble(acc.double_sum, dict));
          }
          break;
        case AggregateSpec::Fn::kAvg:
          if (!acc.numeric_ok || acc.count == 0) {
            row.push_back(kNullTermId);
          } else {
            row.push_back(EncodeDouble(
                acc.double_sum / static_cast<double>(acc.count), dict));
          }
          break;
        case AggregateSpec::Fn::kMin:
        case AggregateSpec::Fn::kMax:
        case AggregateSpec::Fn::kSample:
          row.push_back(acc.extremum);
          break;
      }
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace

StatusOr<Table> GroupByAggregate(const Table& input,
                                 const std::vector<std::string>& keys,
                                 const std::vector<AggregateSpec>& specs,
                                 rdf::Dictionary* dict, ExecContext* ctx) {
  std::vector<int> key_cols;
  std::vector<int> input_cols;
  S2RDF_RETURN_IF_ERROR(
      ResolveAggregateColumns(input, keys, specs, &key_cols, &input_cols));

  // Group rows. std::map keyed by the key tuple gives deterministic
  // output order.
  GroupMap groups;
  if (keys.empty()) {
    // Implicit single group exists even for empty input.
    groups.emplace(std::vector<TermId>{},
                   std::vector<Accumulator>(specs.size()));
  }

  ValueCache values(*dict);
  for (size_t r = 0; r < input.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;  // Partial groups; ExecutePlan reports the interrupt.
    }
    std::vector<TermId> key;
    key.reserve(key_cols.size());
    for (int c : key_cols) key.push_back(input.At(r, static_cast<size_t>(c)));
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups
               .emplace(std::move(key),
                        std::vector<Accumulator>(specs.size()))
               .first;
    }
    AccumulateRow(input, r, specs, input_cols, &it->second, &values);
  }

  Table out = EmitGroups(groups, keys, specs, dict, ctx);
  if (ctx != nullptr) {
    ctx->AccountShuffle(input.NumRows());
    ctx->metrics.intermediate_tuples += out.NumRows();
  }
  return out;
}

StatusOr<Table> ParallelGroupByAggregate(const Table& input,
                                         const std::vector<std::string>& keys,
                                         const std::vector<AggregateSpec>& specs,
                                         rdf::Dictionary* dict,
                                         ExecContext* ctx) {
  // The implicit single group cannot be split group-exclusively, and
  // small inputs don't amortize the extra key-hash pass.
  if (keys.empty() || input.NumRows() < ParallelThreshold(ctx)) {
    return GroupByAggregate(input, keys, specs, dict, ctx);
  }
  std::vector<int> key_cols;
  std::vector<int> input_cols;
  S2RDF_RETURN_IF_ERROR(
      ResolveAggregateColumns(input, keys, specs, &key_cols, &input_cols));

  // Hash-partition rows by group key: every group lands wholly in one
  // worker's partition, so per-group accumulation order is the same
  // ascending row scan as the serial path (exact floating-point sums,
  // identical MIN/MAX/SAMPLE witnesses), and the partition maps are
  // disjoint.
  TaskPool* pool = TaskPool::Shared();
  const size_t parts = pool->ParallelismWidth();
  const size_t n = input.NumRows();
  std::vector<GroupMap> partial(parts);
  std::atomic<bool> interrupted{false};
  pool->ParallelFor(parts, [&](size_t w) {
    ValueCache values(*dict);
    GroupMap& groups = partial[w];
    size_t since_check = 0;
    for (size_t r = 0; r < n; ++r) {
      if (++since_check >= kInterruptCheckRows) {
        since_check = 0;
        if (ctx != nullptr && ctx->InterruptRequested()) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (RowKeyHash(input, r, key_cols) % parts != w) continue;
      std::vector<TermId> key;
      key.reserve(key_cols.size());
      for (int c : key_cols) {
        key.push_back(input.At(r, static_cast<size_t>(c)));
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups
                 .emplace(std::move(key),
                          std::vector<Accumulator>(specs.size()))
                 .first;
      }
      AccumulateRow(input, r, specs, input_cols, &it->second, &values);
    }
  });

  if (interrupted.load(std::memory_order_relaxed)) {
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->AccountShuffle(n);
    }
    std::vector<std::string> names = keys;
    for (const AggregateSpec& spec : specs) names.push_back(spec.output_name);
    return Table(names);  // Empty; ExecutePlan reports the interrupt.
  }

  // Merge the disjoint ordered maps; node moves, no re-accumulation.
  GroupMap groups;
  for (GroupMap& p : partial) groups.merge(p);

  Table out = EmitGroups(groups, keys, specs, dict, ctx);
  if (ctx != nullptr) {
    ctx->AccountShuffle(n);
    ctx->metrics.intermediate_tuples += out.NumRows();
  }
  return out;
}

}  // namespace s2rdf::engine
