#include "engine/aggregate.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "common/hash.h"
#include "engine/value.h"

namespace s2rdf::engine {

namespace {

constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";

// Running state of one aggregate within one group.
struct Accumulator {
  uint64_t count = 0;
  bool numeric_ok = true;   // All inputs numeric so far (SUM/AVG).
  bool all_int = true;      // Keep SUM integral when inputs are.
  long long int_sum = 0;
  double double_sum = 0.0;
  TermId extremum = kNullTermId;  // MIN/MAX/SAMPLE witness.
  std::unordered_set<TermId> distinct_terms;
};

std::string RenderDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // Guarantee a decimal form that round-trips as xsd:double.
  std::string out = buf;
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos &&
      out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

TermId EncodeInteger(long long v, rdf::Dictionary* dict) {
  return dict->Encode("\"" + std::to_string(v) + "\"^^<" +
                      std::string(kXsdInteger) + ">");
}

TermId EncodeDouble(double v, rdf::Dictionary* dict) {
  return dict->Encode("\"" + RenderDouble(v) + "\"^^<" +
                      std::string(kXsdDouble) + ">");
}

}  // namespace

StatusOr<Table> GroupByAggregate(const Table& input,
                                 const std::vector<std::string>& keys,
                                 const std::vector<AggregateSpec>& specs,
                                 rdf::Dictionary* dict, ExecContext* ctx) {
  // Resolve columns.
  std::vector<int> key_cols;
  for (const std::string& key : keys) {
    int c = input.ColumnIndex(key);
    if (c < 0) {
      return InvalidArgumentError("GROUP BY variable not in scope: ?" + key);
    }
    key_cols.push_back(c);
  }
  std::vector<int> input_cols;
  for (const AggregateSpec& spec : specs) {
    if (spec.fn == AggregateSpec::Fn::kCountStar) {
      input_cols.push_back(-1);
      continue;
    }
    int c = input.ColumnIndex(spec.input_var);
    if (c < 0) {
      return InvalidArgumentError("aggregate over unbound variable: ?" +
                                  spec.input_var);
    }
    input_cols.push_back(c);
  }

  // Group rows. std::map keyed by the key tuple gives deterministic
  // output order.
  std::map<std::vector<TermId>, std::vector<Accumulator>> groups;
  auto make_accumulators = [&] {
    return std::vector<Accumulator>(specs.size());
  };
  if (keys.empty()) {
    // Implicit single group exists even for empty input.
    groups.emplace(std::vector<TermId>{}, make_accumulators());
  }

  // Cache of typed values for numeric aggregates.
  std::unordered_map<TermId, Value> value_cache;
  auto value_of = [&](TermId id) -> const Value& {
    auto it = value_cache.find(id);
    if (it != value_cache.end()) return it->second;
    Value v = id == kNullTermId ? Value()
                                : ValueFromCanonicalTerm(dict->Decode(id));
    return value_cache.emplace(id, std::move(v)).first->second;
  };

  for (size_t r = 0; r < input.NumRows(); ++r) {
    std::vector<TermId> key;
    key.reserve(key_cols.size());
    for (int c : key_cols) key.push_back(input.At(r, static_cast<size_t>(c)));
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(std::move(key), make_accumulators()).first;
    }
    std::vector<Accumulator>& accs = it->second;

    for (size_t a = 0; a < specs.size(); ++a) {
      const AggregateSpec& spec = specs[a];
      Accumulator& acc = accs[a];
      if (spec.fn == AggregateSpec::Fn::kCountStar) {
        ++acc.count;
        continue;
      }
      TermId id = input.At(r, static_cast<size_t>(input_cols[a]));
      if (id == kNullTermId) continue;  // Unbound bindings are skipped.
      if (spec.distinct && !acc.distinct_terms.insert(id).second) continue;
      ++acc.count;
      switch (spec.fn) {
        case AggregateSpec::Fn::kCount:
          break;
        case AggregateSpec::Fn::kSum:
        case AggregateSpec::Fn::kAvg: {
          const Value& v = value_of(id);
          if (!v.is_numeric()) {
            acc.numeric_ok = false;
            break;
          }
          if (v.kind == ValueKind::kInt) {
            acc.int_sum += v.int_value;
            acc.double_sum += static_cast<double>(v.int_value);
          } else {
            acc.all_int = false;
            acc.double_sum += v.double_value;
          }
          break;
        }
        case AggregateSpec::Fn::kMin:
        case AggregateSpec::Fn::kMax: {
          if (acc.extremum == kNullTermId) {
            acc.extremum = id;
            break;
          }
          bool comparable = true;
          int c = CompareValues(value_of(id), value_of(acc.extremum),
                                &comparable);
          bool better = spec.fn == AggregateSpec::Fn::kMin ? c < 0 : c > 0;
          if (better) acc.extremum = id;
          break;
        }
        case AggregateSpec::Fn::kSample:
          if (acc.extremum == kNullTermId) acc.extremum = id;
          break;
        case AggregateSpec::Fn::kCountStar:
          break;
      }
    }
  }

  // Emit one row per group.
  std::vector<std::string> names = keys;
  for (const AggregateSpec& spec : specs) names.push_back(spec.output_name);
  Table out(names);
  for (const auto& [key, accs] : groups) {
    std::vector<TermId> row = key;
    for (size_t a = 0; a < specs.size(); ++a) {
      const AggregateSpec& spec = specs[a];
      const Accumulator& acc = accs[a];
      switch (spec.fn) {
        case AggregateSpec::Fn::kCountStar:
        case AggregateSpec::Fn::kCount:
          row.push_back(EncodeInteger(static_cast<long long>(acc.count),
                                      dict));
          break;
        case AggregateSpec::Fn::kSum:
          if (!acc.numeric_ok) {
            row.push_back(kNullTermId);  // Type error -> unbound.
          } else if (acc.all_int) {
            row.push_back(EncodeInteger(acc.int_sum, dict));
          } else {
            row.push_back(EncodeDouble(acc.double_sum, dict));
          }
          break;
        case AggregateSpec::Fn::kAvg:
          if (!acc.numeric_ok || acc.count == 0) {
            row.push_back(kNullTermId);
          } else {
            row.push_back(EncodeDouble(
                acc.double_sum / static_cast<double>(acc.count), dict));
          }
          break;
        case AggregateSpec::Fn::kMin:
        case AggregateSpec::Fn::kMax:
        case AggregateSpec::Fn::kSample:
          row.push_back(acc.extremum);
          break;
      }
    }
    out.AppendRow(row);
  }
  if (ctx != nullptr) {
    ctx->AccountShuffle(input.NumRows());
    ctx->metrics.intermediate_tuples += out.NumRows();
  }
  return out;
}

}  // namespace s2rdf::engine
