#include "engine/parallel_join.h"

#include <atomic>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/task_pool.h"
#include "engine/operators.h"

namespace s2rdf::engine {

Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  JoinSharedColumns(left, right, &left_keys, &right_keys, &right_only);

  const size_t p =
      ctx != nullptr && ctx->num_partitions > 0
          ? static_cast<size_t>(ctx->num_partitions)
          : 1;
  if (left_keys.empty() || p <= 1 ||
      (left.NumRows() < kParallelJoinThreshold &&
       right.NumRows() < kParallelJoinThreshold)) {
    return HashJoin(left, right, ctx);
  }

  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  // Shuffle write: row indices per partition for both sides, ascending
  // (built by one forward scan), which makes each partition's probe
  // order the serial left-row order restricted to that partition.
  std::vector<std::vector<uint32_t>> left_parts(p);
  std::vector<std::vector<uint32_t>> right_parts(p);
  for (size_t r = 0; r < left.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      return JoinOutputSchema(left, right, right_only);  // Empty.
    }
    if (RowKeyHasNull(left, r, left_keys)) continue;
    left_parts[RowKeyHash(left, r, left_keys) % p].push_back(
        static_cast<uint32_t>(r));
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      return JoinOutputSchema(left, right, right_only);
    }
    if (RowKeyHasNull(right, r, right_keys)) continue;
    right_parts[RowKeyHash(right, r, right_keys) % p].push_back(
        static_cast<uint32_t>(r));
  }

  // Per-partition build + probe, one TaskPool task per partition. Each
  // partial table is sorted by original left-row index (ascending probe
  // order, ascending matches per probe — exactly HashJoin's canonical
  // order within the partition).
  std::vector<Table> partial(p, JoinOutputSchema(left, right, right_only));
  std::vector<std::vector<uint32_t>> partial_lrow(p);

  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  auto join_partition_body = [&](size_t part) {
    Table& out = partial[part];
    std::vector<uint32_t>& lrow_of = partial_lrow[part];
    const std::vector<uint32_t>& build_rows = right_parts[part];
    const std::vector<uint32_t>& probe_rows = left_parts[part];
    if (build_rows.empty() || probe_rows.empty()) return;
    // Ascending insertion keeps each bucket in ascending right-row
    // order, matching the serial join's match order.
    std::unordered_map<uint64_t, std::vector<uint32_t>> build;
    build.reserve(build_rows.size());
    for (uint32_t rr : build_rows) {
      build[RowKeyHash(right, rr, right_keys)].push_back(rr);
    }
    // Workers may only *read* the interrupt state (InterruptRequested);
    // recording the reason is left to the query's owning thread.
    size_t since_check = 0;
    for (uint32_t lr : probe_rows) {
      if (++since_check >= kInterruptCheckRows) {
        since_check = 0;
        if (ctx != nullptr && ctx->InterruptRequested()) return;
      }
      auto it = build.find(RowKeyHash(left, lr, left_keys));
      if (it == build.end()) continue;
      for (uint32_t rr : it->second) {
        if (RowKeysEqual(left, lr, left_keys, right, rr, right_keys)) {
          EmitJoinedRow(left, lr, right, rr, right_only, &out);
          lrow_of.push_back(lr);
        }
      }
    }
  };
  auto join_partition = [&](size_t part) {
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    join_partition_body(part);
    if (spans) {
      ctx->task_spans->Record("join partition", part, ctx->profile_origin,
                              t0, MonotonicNow());
    }
  };

  TaskPool::Shared()->ParallelFor(p, join_partition);
  // Record any interrupt the workers bailed on (single-threaded again).
  if (ctx != nullptr && ctx->CheckInterrupt()) {
    // Skip the gather — ExecutePlan discards partial results anyway.
    Table out = JoinOutputSchema(left, right, right_only);
    ctx->metrics.intermediate_tuples += out.NumRows();
    return out;
  }

  // Canonical gather: k-way merge of the partitions by original
  // left-row index. Partitions are disjoint in left rows and each is
  // sorted, so the merged sequence is HashJoin's output exactly.
  size_t total = 0;
  for (const Table& t : partial) total += t.NumRows();
  Table out = JoinOutputSchema(left, right, right_only);
  out.Reserve(total);
  std::vector<size_t> pos(p, 0);
  size_t since_check = 0;
  for (size_t emitted = 0; emitted < total; ++emitted) {
    if (++since_check >= kInterruptCheckRows) {
      since_check = 0;
      if (ctx != nullptr && ctx->CheckInterrupt()) break;
    }
    size_t best = p;
    for (size_t part = 0; part < p; ++part) {
      if (pos[part] >= partial_lrow[part].size()) continue;
      if (best == p ||
          partial_lrow[part][pos[part]] < partial_lrow[best][pos[best]]) {
        best = part;
      }
    }
    out.AppendRowFrom(partial[best], pos[best]);
    ++pos[best];
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

}  // namespace s2rdf::engine
