#include "engine/parallel_join.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/task_pool.h"
#include "engine/operators.h"
#include "engine/parallel.h"

namespace s2rdf::engine {

namespace {

inline constexpr uint32_t kNoEntry = 0xffffffffu;

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// One radix-partitioned join input: per-row key hashes (RowKeyHash's
// exact value, computed column-at-a-time) plus, per partition, the
// non-null-key row indices in ascending order.
struct RadixSide {
  std::vector<uint64_t> hashes;
  std::vector<std::vector<uint32_t>> parts;
};

// Parallel shuffle write for one side: morsels hash and scatter their
// rows into per-morsel partition stripes, then one task per partition
// concatenates its stripes in morsel order — morsels are contiguous
// ascending row ranges, so the concatenation is ascending and the merge
// needs no locks and no sort. Returns false when a worker observed an
// interrupt (the caller records the reason).
bool RadixPartition(const Table& t, const std::vector<int>& keys, size_t p,
                    ExecContext* ctx, const char* span_label,
                    RadixSide* side) {
  const size_t n = t.NumRows();
  side->hashes.resize(n);
  const size_t morsel = MorselRowsFor(n, keys.size(), ctx);
  const size_t morsels = (n + morsel - 1) / morsel;
  std::vector<std::vector<std::vector<uint32_t>>> stripes(morsels);
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  TaskPool::Shared()->ParallelFor(morsels, [&](size_t m) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    const size_t begin = m * morsel;
    const size_t end = std::min(begin + morsel, n);
    std::vector<std::vector<uint32_t>>& local = stripes[m];
    local.assign(p, {});
    uint64_t* h = side->hashes.data();
    std::vector<uint8_t> null_row(kInterruptCheckRows);
    for (size_t cb = begin; cb < end; cb += kInterruptCheckRows) {
      if (ctx != nullptr && ctx->InterruptRequested()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      const size_t ce = std::min(cb + kInterruptCheckRows, end);
      for (size_t r = cb; r < ce; ++r) h[r] = 0x9e3779b97f4a7c15ULL;
      std::fill(null_row.begin(), null_row.begin() + (ce - cb), 0);
      for (int c : keys) {
        const TermId* v = t.ColumnData(static_cast<size_t>(c));
        for (size_t r = cb; r < ce; ++r) h[r] = HashCombine(h[r], v[r]);
        for (size_t r = cb; r < ce; ++r) {
          null_row[r - cb] |= v[r] == kNullTermId;
        }
      }
      for (size_t r = cb; r < ce; ++r) {
        if (null_row[r - cb]) continue;
        local[h[r] % p].push_back(static_cast<uint32_t>(r));
      }
    }
    if (spans) {
      ctx->task_spans->Record(span_label, m, ctx->profile_origin, t0,
                              MonotonicNow());
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) return false;

  side->parts.assign(p, {});
  TaskPool::Shared()->ParallelFor(p, [&](size_t part) {
    if (ctx != nullptr && ctx->InterruptRequested()) {
      interrupted.store(true, std::memory_order_relaxed);
      return;
    }
    size_t total = 0;
    for (const auto& stripe : stripes) total += stripe[part].size();
    std::vector<uint32_t>& dst = side->parts[part];
    dst.reserve(total);
    for (const auto& stripe : stripes) {
      dst.insert(dst.end(), stripe[part].begin(), stripe[part].end());
    }
  });
  return !interrupted.load(std::memory_order_relaxed);
}

}  // namespace

Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  JoinSharedColumns(left, right, &left_keys, &right_keys, &right_only);

  const size_t threshold = ParallelThreshold(ctx);
  if (left_keys.empty() ||
      (ctx != nullptr && ctx->num_partitions <= 1) ||
      (left.NumRows() < threshold && right.NumRows() < threshold)) {
    return HashJoin(left, right, ctx);
  }

  // Charged exactly as the serial HashJoin charges: the logical
  // comparison space and the repartition shuffle, before any work (so
  // an interrupted run reports the same estimate as serial).
  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  // Every interrupted path below funnels through this: record the
  // reason on the owning thread (the same kCancelled/kDeadlineExceeded
  // Status serial operators record) and account the (empty) output like
  // a serial bail-out, so ExecutePlan surfaces an identical error.
  auto interrupted_result = [&]() {
    Table out = JoinOutputSchema(left, right, right_only);
    if (ctx != nullptr) {
      ctx->CheckInterrupt();
      ctx->metrics.intermediate_tuples += out.NumRows();
    }
    return out;
  };

  TaskPool* pool = TaskPool::Shared();
  // Partition count is an execution knob (cache-sized build tables,
  // enough tasks to balance skew), decoupled from the simulated cluster
  // width ctx->num_partitions that the shuffle meter models.
  const size_t p =
      std::clamp<size_t>(pool->ParallelismWidth() * 4, 8, 64);

  // Phase 1: parallel radix shuffle of both sides.
  RadixSide left_side;
  RadixSide right_side;
  if (!RadixPartition(left, left_keys, p, ctx, "shuffle morsel (left)",
                      &left_side) ||
      !RadixPartition(right, right_keys, p, ctx, "shuffle morsel (right)",
                      &right_side)) {
    return interrupted_result();
  }

  // Phase 2: per-partition build + probe, building on the smaller
  // input. The build table is a flat open-addressing chain table over
  // the partition's rows: heads[bucket] / next[i] indices into the
  // ascending partition row list, inserted in descending order so every
  // chain ends up ascending — the serial bucket order.
  const bool build_left = left.NumRows() < right.NumRows();
  const Table& build_t = build_left ? left : right;
  const Table& probe_t = build_left ? right : left;
  const std::vector<int>& build_keys = build_left ? left_keys : right_keys;
  const std::vector<int>& probe_keys = build_left ? right_keys : left_keys;
  const RadixSide& build_s = build_left ? left_side : right_side;
  const RadixSide& probe_s = build_left ? right_side : left_side;

  std::vector<std::vector<uint64_t>> matches(p);
  std::atomic<bool> interrupted{false};
  const bool spans = ctx != nullptr && ctx->ProfileTasks();
  pool->ParallelFor(p, [&](size_t part) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    MonotonicTime t0 = spans ? MonotonicNow() : MonotonicTime{};
    const std::vector<uint32_t>& brows = build_s.parts[part];
    const std::vector<uint32_t>& prows = probe_s.parts[part];
    if (!brows.empty() && !prows.empty()) {
      const size_t cap = NextPow2(brows.size() * 2);
      const uint64_t mask = cap - 1;
      std::vector<uint32_t> heads(cap, kNoEntry);
      std::vector<uint32_t> next(brows.size());
      for (size_t i = brows.size(); i-- > 0;) {
        const size_t b = build_s.hashes[brows[i]] & mask;
        next[i] = heads[b];
        heads[b] = static_cast<uint32_t>(i);
      }
      // Single shared join variable is the common case; compare the two
      // key columns' raw ids directly instead of the generic row walk.
      const bool single = build_keys.size() == 1;
      const TermId* bcol =
          single ? build_t.ColumnData(static_cast<size_t>(build_keys[0]))
                 : nullptr;
      const TermId* pcol =
          single ? probe_t.ColumnData(static_cast<size_t>(probe_keys[0]))
                 : nullptr;
      std::vector<uint64_t>& out = matches[part];
      size_t since_check = 0;
      for (uint32_t pr : prows) {
        if (++since_check >= kInterruptCheckRows) {
          since_check = 0;
          if (ctx != nullptr && ctx->InterruptRequested()) {
            interrupted.store(true, std::memory_order_relaxed);
            break;
          }
        }
        const uint64_t bucket = probe_s.hashes[pr] & mask;
        for (uint32_t idx = heads[bucket]; idx != kNoEntry;
             idx = next[idx]) {
          const uint32_t br = brows[idx];
          const bool eq = single
                              ? bcol[br] == pcol[pr]
                              : RowKeysEqual(build_t, br, build_keys,
                                             probe_t, pr, probe_keys);
          if (!eq) continue;
          const uint64_t lr = build_left ? br : pr;
          const uint64_t rr = build_left ? pr : br;
          out.push_back(lr << 32 | rr);
        }
      }
      // Probe order is ascending probe rows with ascending chain
      // matches. With build=right that is already canonical
      // (left asc, right asc per left row); with build=left the pairs
      // arrived (right asc, left asc) — the packed sort restores the
      // canonical order.
      if (build_left) std::sort(out.begin(), out.end());
    }
    if (spans) {
      ctx->task_spans->Record("join partition", part, ctx->profile_origin,
                              t0, MonotonicNow());
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return interrupted_result();
  }

  // Phase 3: canonical merge. A left row's hash pins it to exactly one
  // partition, so runs of equal left-row live wholly inside one
  // partition and merging by packed value k-way-merges the partitions
  // back into HashJoin's exact output sequence.
  size_t total = 0;
  for (const auto& m : matches) total += m.size();
  std::vector<uint64_t> ordered;
  ordered.reserve(total);
  std::vector<size_t> pos(p, 0);
  size_t since_check = 0;
  bool gather_interrupted = false;
  while (!gather_interrupted && ordered.size() < total) {
    size_t best = p;
    for (size_t part = 0; part < p; ++part) {
      if (pos[part] >= matches[part].size()) continue;
      if (best == p || matches[part][pos[part]] < matches[best][pos[best]]) {
        best = part;
      }
    }
    const std::vector<uint64_t>& vec = matches[best];
    size_t i = pos[best];
    const uint64_t lr_key = vec[i] & 0xffffffff00000000ull;
    while (i < vec.size() && (vec[i] & 0xffffffff00000000ull) == lr_key) {
      if (++since_check >= kInterruptCheckRows) {
        since_check = 0;
        if (ctx != nullptr && ctx->CheckInterrupt()) {
          gather_interrupted = true;
          break;
        }
      }
      ordered.push_back(vec[i++]);
    }
    pos[best] = i;
  }
  if (gather_interrupted) return interrupted_result();

  // Phase 4: columnar materialization — one gather task per output
  // column instead of row-at-a-time appends.
  std::vector<uint32_t> lrows(total);
  std::vector<uint32_t> rrows(total);
  for (size_t i = 0; i < total; ++i) {
    if ((i % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      return interrupted_result();
    }
    lrows[i] = static_cast<uint32_t>(ordered[i] >> 32);
    rrows[i] = static_cast<uint32_t>(ordered[i]);
  }
  const size_t left_w = left.NumColumns();
  const size_t out_w = left_w + right_only.size();
  std::vector<std::vector<TermId>> cols(out_w);
  pool->ParallelFor(out_w, [&](size_t c) {
    if (interrupted.load(std::memory_order_relaxed)) return;
    const bool from_left = c < left_w;
    const Table& src_t = from_left ? left : right;
    const size_t src_c =
        from_left ? c : static_cast<size_t>(right_only[c - left_w]);
    const TermId* src = src_t.ColumnData(src_c);
    const uint32_t* rows = from_left ? lrows.data() : rrows.data();
    std::vector<TermId>& dst = cols[c];
    dst.resize(total);
    for (size_t i = 0; i < total; ++i) {
      if ((i % kInterruptCheckRows) == 0 && ctx != nullptr &&
          ctx->InterruptRequested()) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      dst[i] = src[rows[i]];
    }
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return interrupted_result();
  }
  Table out = JoinOutputSchema(left, right, right_only);
  out.AdoptColumns(std::move(cols));
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

}  // namespace s2rdf::engine
