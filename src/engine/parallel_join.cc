#include "engine/parallel_join.h"

#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "engine/operators.h"

namespace s2rdf::engine {

namespace {

// Shared-column discovery (mirrors operators.cc).
void SharedColumns(const Table& left, const Table& right,
                   std::vector<int>* left_keys, std::vector<int>* right_keys,
                   std::vector<int>* right_only) {
  for (size_t i = 0; i < right.column_names().size(); ++i) {
    int li = left.ColumnIndex(right.column_names()[i]);
    if (li >= 0) {
      left_keys->push_back(li);
      right_keys->push_back(static_cast<int>(i));
    } else {
      right_only->push_back(static_cast<int>(i));
    }
  }
}

uint64_t RowKeyHash(const Table& table, size_t row,
                    const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    h = HashCombine(h, table.At(row, static_cast<size_t>(c)));
  }
  return h;
}

bool RowKeyHasNull(const Table& t, size_t row, const std::vector<int>& cols) {
  for (int c : cols) {
    if (t.At(row, static_cast<size_t>(c)) == kNullTermId) return true;
  }
  return false;
}

}  // namespace

Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx) {
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  std::vector<int> right_only;
  SharedColumns(left, right, &left_keys, &right_keys, &right_only);

  const size_t p =
      ctx != nullptr && ctx->num_partitions > 0
          ? static_cast<size_t>(ctx->num_partitions)
          : 1;
  if (left_keys.empty() || p <= 1 ||
      (left.NumRows() < kParallelJoinThreshold &&
       right.NumRows() < kParallelJoinThreshold)) {
    return HashJoin(left, right, ctx);
  }

  if (ctx != nullptr) {
    ctx->metrics.join_comparisons +=
        static_cast<uint64_t>(left.NumRows()) * right.NumRows();
    ctx->AccountShuffle(left.NumRows() + right.NumRows());
  }

  // Shuffle write: row indices per partition for both sides.
  std::vector<std::vector<uint32_t>> left_parts(p);
  std::vector<std::vector<uint32_t>> right_parts(p);
  for (size_t r = 0; r < left.NumRows(); ++r) {
    if (RowKeyHasNull(left, r, left_keys)) continue;
    left_parts[RowKeyHash(left, r, left_keys) % p].push_back(
        static_cast<uint32_t>(r));
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if (RowKeyHasNull(right, r, right_keys)) continue;
    right_parts[RowKeyHash(right, r, right_keys) % p].push_back(
        static_cast<uint32_t>(r));
  }

  // Per-partition build + probe, one worker thread per partition.
  std::vector<std::string> out_names = left.column_names();
  for (int c : right_only) {
    out_names.push_back(right.column_names()[static_cast<size_t>(c)]);
  }
  std::vector<Table> partial(p, Table(out_names));

  auto join_partition = [&](size_t part) {
    Table& out = partial[part];
    const auto& build_rows = right_parts[part];
    const auto& probe_rows = left_parts[part];
    if (build_rows.empty() || probe_rows.empty()) return;
    std::unordered_multimap<uint64_t, uint32_t> build;
    build.reserve(build_rows.size());
    for (uint32_t rr : build_rows) {
      build.emplace(RowKeyHash(right, rr, right_keys), rr);
    }
    // Workers may only *read* the interrupt state (InterruptRequested);
    // recording the reason is left to the query's owning thread.
    size_t since_check = 0;
    for (uint32_t lr : probe_rows) {
      if (++since_check >= kInterruptCheckRows) {
        since_check = 0;
        if (ctx != nullptr && ctx->InterruptRequested()) return;
      }
      auto [begin, end] = build.equal_range(RowKeyHash(left, lr, left_keys));
      for (auto it = begin; it != end; ++it) {
        uint32_t rr = it->second;
        bool equal = true;
        for (size_t i = 0; i < left_keys.size(); ++i) {
          if (left.At(lr, static_cast<size_t>(left_keys[i])) !=
              right.At(rr, static_cast<size_t>(right_keys[i]))) {
            equal = false;
            break;
          }
        }
        if (!equal) continue;
        std::vector<TermId> row;
        row.reserve(out_names.size());
        for (size_t c = 0; c < left.NumColumns(); ++c) {
          row.push_back(left.At(lr, c));
        }
        for (int c : right_only) {
          row.push_back(right.At(rr, static_cast<size_t>(c)));
        }
        out.AppendRow(row);
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(p);
  for (size_t part = 0; part < p; ++part) {
    workers.emplace_back(join_partition, part);
  }
  for (std::thread& worker : workers) worker.join();
  // Record any interrupt the workers bailed on (single-threaded again).
  if (ctx != nullptr) ctx->CheckInterrupt();

  // Gather.
  size_t total = 0;
  for (const Table& t : partial) total += t.NumRows();
  Table out(out_names);
  out.Reserve(total);
  for (const Table& t : partial) {
    for (size_t r = 0; r < t.NumRows(); ++r) out.AppendRowFrom(t, r);
  }
  if (ctx != nullptr) ctx->metrics.intermediate_tuples += out.NumRows();
  return out;
}

}  // namespace s2rdf::engine
