#include "engine/expression.h"

#include <regex>

#include "common/check.h"

namespace s2rdf::engine {

ExprPtr Expr::Var(std::string name) {
  auto e = ExprPtr(new Expr(Kind::kVar));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Const(std::string canonical_term) {
  auto e = ExprPtr(new Expr(Kind::kConst));
  e->name_ = std::move(canonical_term);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr left, ExprPtr right) {
  auto e = ExprPtr(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = ExprPtr(new Expr(Kind::kAnd));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = ExprPtr(new Expr(Kind::kOr));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = ExprPtr(new Expr(Kind::kNot));
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Bound(std::string var) {
  auto e = ExprPtr(new Expr(Kind::kBound));
  e->name_ = std::move(var);
  return e;
}

ExprPtr Expr::Regex(std::string var, std::string pattern,
                    bool case_insensitive) {
  auto e = ExprPtr(new Expr(Kind::kRegex));
  e->name_ = std::move(var);
  e->left_ = Expr::Const(std::move(pattern));
  e->case_insensitive_ = case_insensitive;
  return e;
}

namespace {
void CollectVars(const Expr& node, std::vector<std::string>* out) {
  switch (node.kind()) {
    case Expr::Kind::kVar:
    case Expr::Kind::kBound:
    case Expr::Kind::kRegex:
      out->push_back(node.name());
      break;
    case Expr::Kind::kConst:
      break;
    default:
      if (node.left() != nullptr) CollectVars(*node.left(), out);
      if (node.right() != nullptr) CollectVars(*node.right(), out);
  }
}

std::string OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}
}  // namespace

std::vector<std::string> Expr::ReferencedVariables() const {
  std::vector<std::string> out;
  CollectVars(*this, &out);
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kVar:
      return "?" + name_;
    case Kind::kConst:
      return name_;
    case Kind::kCompare:
      return "(" + left_->ToString() + " " + OpName(compare_op_) + " " +
             right_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " && " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " || " + right_->ToString() + ")";
    case Kind::kNot:
      return "!" + left_->ToString();
    case Kind::kBound:
      return "BOUND(?" + name_ + ")";
    case Kind::kRegex:
      return "REGEX(?" + name_ + ", \"" + left_->name() + "\")";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr(kind_));
  e->name_ = name_;
  e->compare_op_ = compare_op_;
  e->case_insensitive_ = case_insensitive_;
  if (left_ != nullptr) e->left_ = left_->Clone();
  if (right_ != nullptr) e->right_ = right_->Clone();
  return e;
}

ExprEvaluator::ExprEvaluator(const Expr& expr, const Table& table,
                             const rdf::Dictionary& dict)
    : expr_(expr), table_(table), dict_(dict) {}

Value ExprEvaluator::LeafValue(const Expr& node, size_t row) const {
  if (node.kind() == Expr::Kind::kConst) {
    return ValueFromCanonicalTerm(node.name());
  }
  S2RDF_DCHECK(node.kind() == Expr::Kind::kVar);
  int col = table_.ColumnIndex(node.name());
  if (col < 0) return Value();  // Unprojected variable: unbound.
  TermId id = table_.At(row, static_cast<size_t>(col));
  if (id == kNullTermId) return Value();
  return ValueFromCanonicalTerm(dict_.Decode(id));
}

Truth ExprEvaluator::Eval(size_t row) const { return EvalNode(expr_, row); }

Truth ExprEvaluator::EvalNode(const Expr& node, size_t row) const {
  switch (node.kind()) {
    case Expr::Kind::kCompare: {
      Value a = LeafValue(*node.left(), row);
      Value b = LeafValue(*node.right(), row);
      if (a.kind == ValueKind::kNull || b.kind == ValueKind::kNull) {
        return Truth::kError;
      }
      bool comparable = true;
      int c = CompareValues(a, b, &comparable);
      switch (node.compare_op()) {
        case CompareOp::kEq:
          // Equality across kinds is well-defined (RDF term equality).
          return c == 0 ? Truth::kTrue : Truth::kFalse;
        case CompareOp::kNe:
          return c != 0 ? Truth::kTrue : Truth::kFalse;
        default:
          break;
      }
      if (!comparable) return Truth::kError;
      switch (node.compare_op()) {
        case CompareOp::kLt:
          return c < 0 ? Truth::kTrue : Truth::kFalse;
        case CompareOp::kLe:
          return c <= 0 ? Truth::kTrue : Truth::kFalse;
        case CompareOp::kGt:
          return c > 0 ? Truth::kTrue : Truth::kFalse;
        case CompareOp::kGe:
          return c >= 0 ? Truth::kTrue : Truth::kFalse;
        default:
          return Truth::kError;
      }
    }
    case Expr::Kind::kAnd: {
      Truth a = EvalNode(*node.left(), row);
      Truth b = EvalNode(*node.right(), row);
      if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
      if (a == Truth::kError || b == Truth::kError) return Truth::kError;
      return Truth::kTrue;
    }
    case Expr::Kind::kOr: {
      Truth a = EvalNode(*node.left(), row);
      Truth b = EvalNode(*node.right(), row);
      if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
      if (a == Truth::kError || b == Truth::kError) return Truth::kError;
      return Truth::kFalse;
    }
    case Expr::Kind::kNot: {
      Truth a = EvalNode(*node.left(), row);
      if (a == Truth::kError) return Truth::kError;
      return a == Truth::kTrue ? Truth::kFalse : Truth::kTrue;
    }
    case Expr::Kind::kBound: {
      int col = table_.ColumnIndex(node.name());
      bool bound = col >= 0 &&
                   table_.At(row, static_cast<size_t>(col)) != kNullTermId;
      return bound ? Truth::kTrue : Truth::kFalse;
    }
    case Expr::Kind::kRegex: {
      int col = table_.ColumnIndex(node.name());
      if (col < 0) return Truth::kError;
      TermId id = table_.At(row, static_cast<size_t>(col));
      if (id == kNullTermId) return Truth::kError;
      Value v = ValueFromCanonicalTerm(dict_.Decode(id));
      auto flags = std::regex::ECMAScript;
      if (node.case_insensitive_) flags |= std::regex::icase;
      // Compiled per row for simplicity; FILTER regex is rare in the
      // paper's workloads so this is not on any measured path.
      std::regex re(node.left()->name(), flags);
      return std::regex_search(v.text, re) ? Truth::kTrue : Truth::kFalse;
    }
    case Expr::Kind::kVar:
    case Expr::Kind::kConst: {
      // Effective boolean value of a bare term.
      Value v = LeafValue(node, row);
      switch (v.kind) {
        case ValueKind::kNull:
          return Truth::kError;
        case ValueKind::kBool:
          return v.bool_value ? Truth::kTrue : Truth::kFalse;
        case ValueKind::kInt:
          return v.int_value != 0 ? Truth::kTrue : Truth::kFalse;
        case ValueKind::kDouble:
          return v.double_value != 0.0 ? Truth::kTrue : Truth::kFalse;
        case ValueKind::kString:
          return v.text.empty() ? Truth::kFalse : Truth::kTrue;
        default:
          return Truth::kError;
      }
    }
  }
  return Truth::kError;
}

}  // namespace s2rdf::engine
