#ifndef S2RDF_ENGINE_PROFILE_H_
#define S2RDF_ENGINE_PROFILE_H_

#include <string>
#include <vector>

#include "engine/exec_context.h"

// Structured query profiles and their renderings. A QueryProfile is the
// per-query observability record: the operator tree the executor ran
// (with table/layout/SF provenance, row counts and metric deltas), the
// morsel/partition task spans of parallel operators, and the
// parse/compile/execute stage split. Two renderings:
//
//   RenderProfileText  -> the EXPLAIN ANALYZE text a human reads,
//   RenderTraceJson    -> Chrome trace_event JSON (chrome://tracing,
//                         Perfetto) with stages and operators on lane 0
//                         and parallel tasks on per-partition lanes.
//
// Collection is driven by QueryOptions::collect_profile; when off,
// nothing here runs and the executor records nothing.

namespace s2rdf::engine {

struct QueryProfile {
  // Request-scoped trace id (empty when the caller did not assign one).
  // Rendered in the EXPLAIN ANALYZE header and as Chrome trace metadata
  // so a /sparql response, a slow-query line and a dumped trace file
  // can be joined on it.
  std::string trace_id;
  // Pre-order operator tree (depth reconstructs the shape).
  std::vector<OperatorProfile> operators;
  // Morsel/partition spans of parallel operators (empty when serial).
  std::vector<TaskSpan> tasks;
  // Stage split of the request, milliseconds.
  double parse_ms = 0.0;
  double compile_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
  // Whole-query metric totals (the operator deltas sum to these).
  ExecMetrics totals;
};

// EXPLAIN ANALYZE text: stage header, indented operator tree with rows,
// inclusive wall time, scan provenance and metric deltas, totals footer.
std::string RenderProfileText(const QueryProfile& profile);

// Chrome trace_event JSON ("traceEvents" array of complete events,
// timestamps in microseconds). `name` labels the trace (typically the
// query string, truncated by the caller if huge).
std::string RenderTraceJson(const QueryProfile& profile,
                            const std::string& name);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PROFILE_H_
