#ifndef S2RDF_ENGINE_VALUE_H_
#define S2RDF_ENGINE_VALUE_H_

#include <string>
#include <string_view>

// Typed view over a canonical RDF term string, used by FILTER evaluation
// and ORDER BY. Numeric XSD literals compare numerically; everything else
// compares by kind then lexically, which matches SPARQL's operator
// semantics closely enough for the workloads in the paper (WatDiv filters
// compare numeric literals and IRIs for equality).

namespace s2rdf::engine {

enum class ValueKind {
  kNull,     // Unbound (OPTIONAL non-match).
  kIri,
  kBlank,
  kString,   // Plain or language-tagged literal.
  kInt,
  kDouble,
  kBool,
};

struct Value {
  ValueKind kind = ValueKind::kNull;
  // Raw text: IRI, blank label, or literal lexical form.
  std::string text;
  long long int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;

  bool is_numeric() const {
    return kind == ValueKind::kInt || kind == ValueKind::kDouble;
  }
  double AsDouble() const {
    return kind == ValueKind::kInt ? static_cast<double>(int_value)
                                   : double_value;
  }
};

// Parses a canonical N-Triples term string into a typed Value.
Value ValueFromCanonicalTerm(std::string_view canonical);

// Three-way comparison. Sets `*comparable` to false when SPARQL would
// raise a type error (e.g. number vs IRI); the result is then meaningless
// for FILTER purposes but still totally ordered for ORDER BY stability.
int CompareValues(const Value& a, const Value& b, bool* comparable);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_VALUE_H_
