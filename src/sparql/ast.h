#ifndef S2RDF_SPARQL_AST_H_
#define S2RDF_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/operators.h"

// Abstract syntax for the SPARQL 1.0 fragment S2RDF supports (the same
// fragment the paper's prototype supports: BGPs, FILTER, OPTIONAL, UNION,
// DISTINCT, ORDER BY, LIMIT, OFFSET; no SPARQL 1.1 aggregates or
// subqueries — see Sec. 6.1 of the paper).

namespace s2rdf::sparql {

// One position of a triple pattern: either a variable or a bound term in
// canonical N-Triples form.
struct PatternTerm {
  enum class Kind { kVariable, kTerm };
  Kind kind = Kind::kTerm;
  // Variable name without '?', or the canonical term string.
  std::string value;

  static PatternTerm Var(std::string name) {
    return {Kind::kVariable, std::move(name)};
  }
  static PatternTerm Term(std::string canonical) {
    return {Kind::kTerm, std::move(canonical)};
  }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const PatternTerm& a, const PatternTerm& b) {
    return a.kind == b.kind && a.value == b.value;
  }
};

struct TriplePattern {
  PatternTerm subject;
  PatternTerm predicate;
  PatternTerm object;

  // Variables occurring in this pattern, in s/p/o order.
  std::vector<std::string> Variables() const;

  std::string ToString() const;

  friend bool operator==(const TriplePattern& a, const TriplePattern& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

struct Query;

// SPARQL 1.1 VALUES block: inline solution data joined with the group.
struct InlineData {
  std::vector<std::string> variables;
  // Rows of canonical terms, aligned to `variables`.
  std::vector<std::vector<std::string>> rows;
};

// A group graph pattern: a BGP plus nested FILTER / OPTIONAL / UNION /
// sub-SELECT / VALUES.
struct GraphPattern {
  std::vector<TriplePattern> triples;
  std::vector<engine::ExprPtr> filters;
  std::vector<GraphPattern> optionals;
  // Each element is one UNION chain: 2+ alternative group patterns.
  std::vector<std::vector<GraphPattern>> unions;
  // SPARQL 1.1 subqueries: `{ SELECT ... }` joined with the group; only
  // their projected variables are visible outside.
  std::vector<std::unique_ptr<Query>> subqueries;
  // SPARQL 1.1 VALUES blocks.
  std::vector<InlineData> values;

  GraphPattern() = default;
  GraphPattern(GraphPattern&&) = default;
  GraphPattern& operator=(GraphPattern&&) = default;

  bool IsPlainBgp() const {
    return filters.empty() && optionals.empty() && unions.empty() &&
           subqueries.empty();
  }

  // All variables bound anywhere in the pattern (BGP + nested groups +
  // subquery projections).
  std::vector<std::string> AllVariables() const;
};

// The query form (W3C SPARQL query types).
enum class QueryForm {
  kSelect,
  kAsk,
  kConstruct,  // Builds a graph from a template per solution.
  kDescribe,   // Concise bounded description of resources.
};

struct Query {
  QueryForm form = QueryForm::kSelect;
  // ASK query: the result is whether the pattern has any solution.
  // (Kept in sync with `form` for backward compatibility.)
  bool is_ask = false;
  bool distinct = false;
  // True for `SELECT *`.
  bool select_all = false;
  // Output columns in SELECT order: plain variable names and aggregate
  // aliases interleaved as written.
  std::vector<std::string> projection;
  // SPARQL 1.1 aggregates (non-empty makes this an aggregate query).
  std::vector<engine::AggregateSpec> aggregates;
  std::vector<std::string> group_by;
  // CONSTRUCT template (triple patterns instantiated per solution).
  std::vector<TriplePattern> construct_template;
  // DESCRIBE targets: variables and/or constant terms.
  std::vector<PatternTerm> describe_targets;
  GraphPattern where;
  std::vector<engine::SortKey> order_by;
  uint64_t offset = 0;
  uint64_t limit = engine::kNoLimit;
};

}  // namespace s2rdf::sparql

#endif  // S2RDF_SPARQL_AST_H_
