#ifndef S2RDF_SPARQL_PARSER_H_
#define S2RDF_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/ast.h"

// Recursive-descent parser for the supported SPARQL fragment:
//
//   PREFIX declarations; SELECT [DISTINCT] (* | vars) WHERE { ... };
//   basic graph patterns (with ';' and ',' abbreviations and the 'a'
//   keyword); FILTER with comparisons, &&/||/!, BOUND, REGEX; OPTIONAL;
//   UNION; ORDER BY; LIMIT; OFFSET.
//
// This matches the SPARQL 1.0 surface of the paper's prototype (Sec. 6.1:
// no 1.1 aggregates/subqueries).

namespace s2rdf::sparql {

// Parses `text` into a Query. Prefixed names are expanded using the
// query's PREFIX declarations; numeric and boolean literals are
// canonicalized to typed xsd literals.
StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace s2rdf::sparql

#endif  // S2RDF_SPARQL_PARSER_H_
