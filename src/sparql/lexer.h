#ifndef S2RDF_SPARQL_LEXER_H_
#define S2RDF_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// SPARQL tokenizer. Produces a flat token stream consumed by the
// recursive-descent parser.

namespace s2rdf::sparql {

enum class TokenKind {
  kEof,
  kKeyword,      // SELECT, WHERE, FILTER, ... (upper-cased in `text`).
  kVariable,     // ?x / $x — `text` holds the name without the sigil.
  kIriRef,       // <...> — `text` holds the IRI without brackets.
  kPrefixedName, // pre:local (or pre: / :local) — `text` verbatim.
  kString,       // Literal with optional @lang / ^^type — canonical form.
  kNumber,       // Numeric literal — `text` holds the digits verbatim.
  kBoolean,      // true / false.
  kPunct,        // { } ( ) . ; , * =
  kOperator,     // = != < <= > >= && || !
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;

  bool IsKeyword(std::string_view keyword) const {
    return kind == TokenKind::kKeyword && text == keyword;
  }
  bool IsPunct(std::string_view punct) const {
    return kind == TokenKind::kPunct && text == punct;
  }
  bool IsOperator(std::string_view op) const {
    return kind == TokenKind::kOperator && text == op;
  }
};

// Tokenizes `input`. `#` comments run to end of line. The final token is
// always kEof.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace s2rdf::sparql

#endif  // S2RDF_SPARQL_LEXER_H_
