#include "sparql/shape.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace s2rdf::sparql {

const char* QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kSingle:
      return "single";
    case QueryShape::kStar:
      return "star";
    case QueryShape::kLinear:
      return "linear";
    case QueryShape::kSnowflake:
      return "snowflake";
    case QueryShape::kComplex:
      return "complex";
    case QueryShape::kDisconnected:
      return "disconnected";
  }
  return "?";
}

namespace {

// BFS eccentricity of `start` in an adjacency-list graph; also reports
// how many nodes were reached.
std::pair<int, size_t> Eccentricity(
    const std::vector<std::vector<int>>& adjacency, int start) {
  std::vector<int> distance(adjacency.size(), -1);
  std::queue<int> frontier;
  distance[static_cast<size_t>(start)] = 0;
  frontier.push(start);
  int max_distance = 0;
  size_t reached = 1;
  while (!frontier.empty()) {
    int node = frontier.front();
    frontier.pop();
    for (int next : adjacency[static_cast<size_t>(node)]) {
      if (distance[static_cast<size_t>(next)] >= 0) continue;
      distance[static_cast<size_t>(next)] =
          distance[static_cast<size_t>(node)] + 1;
      max_distance =
          std::max(max_distance, distance[static_cast<size_t>(next)]);
      ++reached;
      frontier.push(next);
    }
  }
  return {max_distance, reached};
}

// True when the undirected simple graph has a cycle.
bool HasCycle(const std::map<std::string, std::set<std::string>>& adjacency) {
  std::set<std::string> visited;
  for (const auto& [start, _] : adjacency) {
    if (visited.contains(start)) continue;
    // Iterative DFS with parent tracking.
    std::vector<std::pair<std::string, std::string>> stack = {{start, ""}};
    while (!stack.empty()) {
      auto [node, parent] = stack.back();
      stack.pop_back();
      if (!visited.insert(node).second) return true;  // Revisit = cycle.
      for (const std::string& next : adjacency.at(node)) {
        if (next == parent) continue;
        if (visited.contains(next)) return true;
        stack.emplace_back(next, node);
      }
    }
  }
  return false;
}

}  // namespace

ShapeInfo AnalyzeBgpShape(const std::vector<TriplePattern>& bgp) {
  ShapeInfo info;
  info.num_patterns = static_cast<int>(bgp.size());
  if (bgp.empty()) return info;
  if (bgp.size() == 1) {
    info.shape = QueryShape::kSingle;
    return info;
  }

  // Variable sets per pattern.
  std::vector<std::set<std::string>> vars(bgp.size());
  for (size_t i = 0; i < bgp.size(); ++i) {
    for (const std::string& v : bgp[i].Variables()) vars[i].insert(v);
  }

  // Pattern graph.
  std::vector<std::vector<int>> adjacency(bgp.size());
  for (size_t i = 0; i < bgp.size(); ++i) {
    for (size_t j = i + 1; j < bgp.size(); ++j) {
      bool shares = std::any_of(vars[i].begin(), vars[i].end(),
                                [&](const std::string& v) {
                                  return vars[j].contains(v);
                                });
      if (shares) {
        adjacency[i].push_back(static_cast<int>(j));
        adjacency[j].push_back(static_cast<int>(i));
      }
    }
  }

  // Connectivity + diameter (max eccentricity).
  auto [first_ecc, reached] = Eccentricity(adjacency, 0);
  if (reached != bgp.size()) {
    info.shape = QueryShape::kDisconnected;
    // Diameter of the largest reachable structure is still useful.
  }
  int diameter = first_ecc;
  for (size_t i = 1; i < bgp.size(); ++i) {
    diameter = std::max(diameter, Eccentricity(adjacency, static_cast<int>(i)).first);
  }
  info.diameter = diameter;
  if (info.shape == QueryShape::kDisconnected) return info;

  // Star: one variable in every pattern (3+ patterns).
  if (bgp.size() >= 3) {
    std::set<std::string> common = vars[0];
    for (size_t i = 1; i < bgp.size() && !common.empty(); ++i) {
      std::set<std::string> next;
      for (const std::string& v : common) {
        if (vars[i].contains(v)) next.insert(v);
      }
      common = std::move(next);
    }
    if (!common.empty()) {
      // A genuine star shares nothing but the center: any second shared
      // variable between two patterns forms a cycle through the center.
      const std::string center = *common.begin();
      bool pure = true;
      for (size_t i = 0; i < bgp.size() && pure; ++i) {
        for (size_t j = i + 1; j < bgp.size() && pure; ++j) {
          for (const std::string& v : vars[i]) {
            if (v != center && vars[j].contains(v)) {
              pure = false;
              break;
            }
          }
        }
      }
      if (pure) {
        info.shape = QueryShape::kStar;
        info.center_variable = center;
        return info;
      }
      info.shape = QueryShape::kComplex;
      return info;
    }
  }

  // Linear: the pattern graph is a simple path.
  int endpoints = 0;
  bool path_like = true;
  size_t edges = 0;
  for (const auto& neighbors : adjacency) {
    edges += neighbors.size();
    if (neighbors.size() == 1) {
      ++endpoints;
    } else if (neighbors.size() != 2) {
      path_like = false;
    }
  }
  edges /= 2;
  if (path_like && endpoints == 2 && edges == bgp.size() - 1) {
    info.shape = QueryShape::kLinear;
    return info;
  }
  if (bgp.size() == 2) {
    info.shape = QueryShape::kLinear;  // Two connected patterns.
    return info;
  }

  // Snowflake vs complex: acyclicity of the join-variable graph.
  std::map<std::string, std::set<std::string>> join_var_graph;
  std::map<std::string, int> var_pattern_count;
  for (const auto& pattern_vars : vars) {
    for (const std::string& v : pattern_vars) ++var_pattern_count[v];
  }
  auto is_join_var = [&](const std::string& v) {
    return var_pattern_count[v] >= 2;
  };
  std::map<std::pair<std::string, std::string>, int> edge_multiplicity;
  for (const auto& pattern_vars : vars) {
    std::vector<std::string> join_vars;
    for (const std::string& v : pattern_vars) {
      if (is_join_var(v)) join_vars.push_back(v);
    }
    for (const std::string& v : join_vars) join_var_graph[v];
    for (size_t a = 0; a < join_vars.size(); ++a) {
      for (size_t b = a + 1; b < join_vars.size(); ++b) {
        join_var_graph[join_vars[a]].insert(join_vars[b]);
        join_var_graph[join_vars[b]].insert(join_vars[a]);
        ++edge_multiplicity[{std::min(join_vars[a], join_vars[b]),
                             std::max(join_vars[a], join_vars[b])}];
      }
    }
  }
  // Two patterns bridging the same variable pair form a cycle the simple
  // graph cannot see (e.g. `?x :p ?y . ?x :q ?y`).
  bool parallel_edges = std::any_of(
      edge_multiplicity.begin(), edge_multiplicity.end(),
      [](const auto& entry) { return entry.second >= 2; });
  info.shape = parallel_edges || HasCycle(join_var_graph)
                   ? QueryShape::kComplex
                   : QueryShape::kSnowflake;
  return info;
}

}  // namespace s2rdf::sparql
