#include "sparql/results_io.h"

#include <cstdio>

#include "rdf/term.h"

namespace s2rdf::sparql {

namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string XmlEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Renders one term as a SPARQL-JSON binding object.
std::string TermToJson(const std::string& canonical) {
  StatusOr<rdf::Term> term = rdf::Term::Parse(canonical);
  if (!term.ok()) {
    return R"({"type": "literal", "value": ")" + JsonEscape(canonical) +
           "\"}";
  }
  switch (term->kind()) {
    case rdf::TermKind::kIri:
      return R"({"type": "uri", "value": ")" + JsonEscape(term->value()) +
             "\"}";
    case rdf::TermKind::kBlankNode:
      return R"({"type": "bnode", "value": ")" + JsonEscape(term->value()) +
             "\"}";
    case rdf::TermKind::kLiteral: {
      std::string out =
          R"({"type": "literal", "value": ")" + JsonEscape(term->value()) +
          "\"";
      if (!term->language().empty()) {
        out += R"(, "xml:lang": ")" + JsonEscape(term->language()) + "\"";
      } else if (!term->datatype().empty()) {
        out += R"(, "datatype": ")" + JsonEscape(term->datatype()) + "\"";
      }
      return out + "}";
    }
  }
  return "{}";
}

std::string TermToXml(const std::string& canonical) {
  StatusOr<rdf::Term> term = rdf::Term::Parse(canonical);
  if (!term.ok()) {
    return "<literal>" + XmlEscape(canonical) + "</literal>";
  }
  switch (term->kind()) {
    case rdf::TermKind::kIri:
      return "<uri>" + XmlEscape(term->value()) + "</uri>";
    case rdf::TermKind::kBlankNode:
      return "<bnode>" + XmlEscape(term->value()) + "</bnode>";
    case rdf::TermKind::kLiteral: {
      std::string attrs;
      if (!term->language().empty()) {
        attrs = " xml:lang=\"" + XmlEscape(term->language()) + "\"";
      } else if (!term->datatype().empty()) {
        attrs = " datatype=\"" + XmlEscape(term->datatype()) + "\"";
      }
      return "<literal" + attrs + ">" + XmlEscape(term->value()) +
             "</literal>";
    }
  }
  return "";
}

// CSV cell: the plain value (IRIs without brackets, literal lexical
// forms), quoted per RFC 4180 when needed.
std::string TermToCsv(const std::string& canonical) {
  StatusOr<rdf::Term> term = rdf::Term::Parse(canonical);
  std::string value = term.ok() ? term->value() : canonical;
  bool needs_quotes = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string ResultsToJson(const engine::Table& table,
                          const rdf::Dictionary& dict) {
  std::string out = "{\n  \"head\": { \"vars\": [";
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += ", ";
    out += "\"" + JsonEscape(table.column_names()[c]) + "\"";
  }
  out += "] },\n  \"results\": { \"bindings\": [\n";
  for (size_t r = 0; r < table.NumRows(); ++r) {
    out += "    {";
    bool first = true;
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      engine::TermId id = table.At(r, c);
      if (id == engine::kNullTermId) continue;  // Unbound: omitted.
      if (!first) out += ", ";
      first = false;
      out += "\"" + JsonEscape(table.column_names()[c]) +
             "\": " + TermToJson(dict.Decode(id));
    }
    out += r + 1 < table.NumRows() ? "},\n" : "}\n";
  }
  out += "  ] }\n}\n";
  return out;
}

std::string ResultsToXml(const engine::Table& table,
                         const rdf::Dictionary& dict) {
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n"
      "  <head>\n";
  for (const std::string& name : table.column_names()) {
    out += "    <variable name=\"" + XmlEscape(name) + "\"/>\n";
  }
  out += "  </head>\n  <results>\n";
  for (size_t r = 0; r < table.NumRows(); ++r) {
    out += "    <result>\n";
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      engine::TermId id = table.At(r, c);
      if (id == engine::kNullTermId) continue;
      out += "      <binding name=\"" +
             XmlEscape(table.column_names()[c]) + "\">" +
             TermToXml(dict.Decode(id)) + "</binding>\n";
    }
    out += "    </result>\n";
  }
  out += "  </results>\n</sparql>\n";
  return out;
}

std::string ResultsToCsv(const engine::Table& table,
                         const rdf::Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += ",";
    out += table.column_names()[c];
  }
  out += "\r\n";
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += ",";
      engine::TermId id = table.At(r, c);
      if (id != engine::kNullTermId) out += TermToCsv(dict.Decode(id));
    }
    out += "\r\n";
  }
  return out;
}

std::string ResultsToTsv(const engine::Table& table,
                         const rdf::Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c > 0) out += "\t";
    out += "?" + table.column_names()[c];
  }
  out += "\n";
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c > 0) out += "\t";
      engine::TermId id = table.At(r, c);
      if (id != engine::kNullTermId) out += dict.Decode(id);
    }
    out += "\n";
  }
  return out;
}

std::string AskToJson(bool result) {
  return std::string("{ \"head\": {}, \"boolean\": ") +
         (result ? "true" : "false") + " }\n";
}

std::string AskToXml(bool result) {
  return std::string(
             "<?xml version=\"1.0\"?>\n"
             "<sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n"
             "  <head/>\n  <boolean>") +
         (result ? "true" : "false") + "</boolean>\n</sparql>\n";
}

}  // namespace s2rdf::sparql
