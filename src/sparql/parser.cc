#include "sparql/parser.h"

#include <map>

#include "common/strings.h"
#include "rdf/term.h"
#include "sparql/lexer.h"

namespace s2rdf::sparql {

namespace {

constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Query> Run() {
    S2RDF_RETURN_IF_ERROR(ParsePrologue());
    Query query;
    S2RDF_RETURN_IF_ERROR(ParseSelect(&query));
    if (Cur().kind != TokenKind::kEof) {
      return Error("trailing tokens after query");
    }
    return query;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError("parse error at line " +
                                std::to_string(Cur().line) + " near '" +
                                Cur().text + "': " + message);
  }

  Status Expect(TokenKind kind, std::string_view text) {
    if (Cur().kind != kind || Cur().text != text) {
      return Error("expected '" + std::string(text) + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ParsePrologue() {
    while (Cur().IsKeyword("PREFIX")) {
      Advance();
      if (Cur().kind != TokenKind::kPrefixedName ||
          !EndsWith(Cur().text, ":")) {
        return Error("expected prefix name ending in ':'");
      }
      std::string prefix = Cur().text.substr(0, Cur().text.size() - 1);
      Advance();
      if (Cur().kind != TokenKind::kIriRef) {
        return Error("expected IRI after PREFIX");
      }
      prefixes_[prefix] = Cur().text;
      Advance();
    }
    return Status::Ok();
  }

  Status ParseSelect(Query* query) {
    if (Cur().IsKeyword("ASK")) {
      Advance();
      query->form = QueryForm::kAsk;
      query->is_ask = true;
      query->select_all = true;
      if (Cur().IsKeyword("WHERE")) Advance();
      return ParseGroupGraphPattern(&query->where);
    }
    if (Cur().IsKeyword("CONSTRUCT")) {
      Advance();
      query->form = QueryForm::kConstruct;
      query->select_all = true;
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "{"));
      GraphPattern template_pattern;
      while (!Cur().IsPunct("}")) {
        if (Cur().kind == TokenKind::kEof) {
          return Error("unterminated CONSTRUCT template");
        }
        S2RDF_RETURN_IF_ERROR(ParseTriplesSameSubject(&template_pattern));
        if (Cur().IsPunct(".")) Advance();
      }
      Advance();  // '}'
      query->construct_template = std::move(template_pattern.triples);
      if (query->construct_template.empty()) {
        return Error("CONSTRUCT template is empty");
      }
      if (Cur().IsKeyword("WHERE")) Advance();
      S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&query->where));
      return ParseSolutionModifiers(query);
    }
    if (Cur().IsKeyword("DESCRIBE")) {
      Advance();
      query->form = QueryForm::kDescribe;
      query->select_all = true;
      while (true) {
        if (Cur().kind == TokenKind::kVariable) {
          query->describe_targets.push_back(PatternTerm::Var(Cur().text));
          Advance();
          continue;
        }
        if (Cur().kind == TokenKind::kIriRef) {
          query->describe_targets.push_back(
              PatternTerm::Term("<" + Cur().text + ">"));
          Advance();
          continue;
        }
        if (Cur().kind == TokenKind::kPrefixedName &&
            !StartsWith(Cur().text, "_:")) {
          S2RDF_ASSIGN_OR_RETURN(std::string iri,
                                 ExpandPrefixedName(Cur().text));
          query->describe_targets.push_back(
              PatternTerm::Term(std::move(iri)));
          Advance();
          continue;
        }
        break;
      }
      if (query->describe_targets.empty()) {
        return Error("DESCRIBE needs at least one target");
      }
      if (Cur().IsKeyword("WHERE")) Advance();
      if (Cur().IsPunct("{")) {
        S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&query->where));
        return ParseSolutionModifiers(query);
      }
      return Status::Ok();
    }
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "SELECT"));
    if (Cur().IsKeyword("DISTINCT")) {
      query->distinct = true;
      Advance();
    } else if (Cur().IsKeyword("REDUCED")) {
      Advance();  // REDUCED is treated as a no-op, like most engines.
    }
    if (Cur().IsPunct("*")) {
      query->select_all = true;
      Advance();
    } else {
      while (true) {
        if (Cur().kind == TokenKind::kVariable) {
          query->projection.push_back(Cur().text);
          Advance();
          continue;
        }
        if (Cur().IsPunct("(")) {
          S2RDF_RETURN_IF_ERROR(ParseAggregateSelectItem(query));
          continue;
        }
        break;
      }
      if (query->projection.empty()) {
        return Error("SELECT needs '*' or at least one variable");
      }
    }
    if (Cur().IsKeyword("WHERE")) Advance();
    S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&query->where));
    return ParseSolutionModifiers(query);
  }

  // Parses `( COUNT(DISTINCT ?v) AS ?alias )` and friends.
  Status ParseAggregateSelectItem(Query* query) {
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
    engine::AggregateSpec spec;
    if (Cur().IsKeyword("COUNT")) {
      spec.fn = engine::AggregateSpec::Fn::kCount;
    } else if (Cur().IsKeyword("SUM")) {
      spec.fn = engine::AggregateSpec::Fn::kSum;
    } else if (Cur().IsKeyword("AVG")) {
      spec.fn = engine::AggregateSpec::Fn::kAvg;
    } else if (Cur().IsKeyword("MIN")) {
      spec.fn = engine::AggregateSpec::Fn::kMin;
    } else if (Cur().IsKeyword("MAX")) {
      spec.fn = engine::AggregateSpec::Fn::kMax;
    } else if (Cur().IsKeyword("SAMPLE")) {
      spec.fn = engine::AggregateSpec::Fn::kSample;
    } else {
      return Error("expected aggregate function");
    }
    Advance();
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
    if (Cur().IsKeyword("DISTINCT")) {
      spec.distinct = true;
      Advance();
    }
    if (Cur().IsPunct("*")) {
      if (spec.fn != engine::AggregateSpec::Fn::kCount) {
        return Error("'*' is only valid inside COUNT");
      }
      spec.fn = engine::AggregateSpec::Fn::kCountStar;
      Advance();
    } else if (Cur().kind == TokenKind::kVariable) {
      spec.input_var = Cur().text;
      Advance();
    } else {
      return Error("expected '*' or a variable in aggregate");
    }
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "AS"));
    if (Cur().kind != TokenKind::kVariable) {
      return Error("expected alias variable after AS");
    }
    spec.output_name = Cur().text;
    Advance();
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
    query->projection.push_back(spec.output_name);
    query->aggregates.push_back(std::move(spec));
    return Status::Ok();
  }

  Status ParseSolutionModifiers(Query* query) {
    if (Cur().IsKeyword("GROUP")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "BY"));
      while (Cur().kind == TokenKind::kVariable) {
        query->group_by.push_back(Cur().text);
        Advance();
      }
      if (query->group_by.empty()) {
        return Error("GROUP BY needs at least one variable");
      }
    }
    if (Cur().IsKeyword("HAVING")) {
      return Error("HAVING is not supported");
    }
    if (Cur().IsKeyword("ORDER")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kKeyword, "BY"));
      while (true) {
        bool ascending = true;
        if (Cur().IsKeyword("ASC")) {
          Advance();
          S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
          if (Cur().kind != TokenKind::kVariable) {
            return Error("expected variable in ASC()");
          }
          query->order_by.push_back({Cur().text, true});
          Advance();
          S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
          continue;
        }
        if (Cur().IsKeyword("DESC")) {
          Advance();
          S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
          if (Cur().kind != TokenKind::kVariable) {
            return Error("expected variable in DESC()");
          }
          query->order_by.push_back({Cur().text, false});
          Advance();
          S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
          continue;
        }
        if (Cur().kind == TokenKind::kVariable) {
          query->order_by.push_back({Cur().text, ascending});
          Advance();
          continue;
        }
        break;
      }
      if (query->order_by.empty()) {
        return Error("ORDER BY needs at least one sort key");
      }
    }
    // LIMIT and OFFSET may appear in either order.
    for (int i = 0; i < 2; ++i) {
      if (Cur().IsKeyword("LIMIT")) {
        Advance();
        if (Cur().kind != TokenKind::kNumber) {
          return Error("expected number after LIMIT");
        }
        long long n = 0;
        if (!ParseInt64(Cur().text, &n) || n < 0) {
          return Error("invalid LIMIT");
        }
        query->limit = static_cast<uint64_t>(n);
        Advance();
      } else if (Cur().IsKeyword("OFFSET")) {
        Advance();
        if (Cur().kind != TokenKind::kNumber) {
          return Error("expected number after OFFSET");
        }
        long long n = 0;
        if (!ParseInt64(Cur().text, &n) || n < 0) {
          return Error("invalid OFFSET");
        }
        query->offset = static_cast<uint64_t>(n);
        Advance();
      }
    }
    return Status::Ok();
  }

  Status ParseGroupGraphPattern(GraphPattern* pattern) {
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "{"));
    while (!Cur().IsPunct("}")) {
      if (Cur().kind == TokenKind::kEof) {
        return Error("unterminated group graph pattern");
      }
      if (Cur().IsKeyword("FILTER")) {
        Advance();
        engine::ExprPtr expr;
        S2RDF_RETURN_IF_ERROR(ParseConstraint(&expr));
        pattern->filters.push_back(std::move(expr));
      } else if (Cur().IsKeyword("OPTIONAL")) {
        Advance();
        GraphPattern optional;
        S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&optional));
        pattern->optionals.push_back(std::move(optional));
      } else if (Cur().IsKeyword("VALUES")) {
        Advance();
        InlineData data;
        S2RDF_RETURN_IF_ERROR(ParseInlineData(&data));
        pattern->values.push_back(std::move(data));
      } else if (Cur().IsPunct("{") && Peek().IsKeyword("SELECT")) {
        // SPARQL 1.1 subquery.
        Advance();  // '{'
        auto sub = std::make_unique<Query>();
        S2RDF_RETURN_IF_ERROR(ParseSelect(sub.get()));
        S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "}"));
        pattern->subqueries.push_back(std::move(sub));
      } else if (Cur().IsPunct("{")) {
        std::vector<GraphPattern> chain;
        GraphPattern first;
        S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&first));
        chain.push_back(std::move(first));
        while (Cur().IsKeyword("UNION")) {
          Advance();
          GraphPattern alt;
          S2RDF_RETURN_IF_ERROR(ParseGroupGraphPattern(&alt));
          chain.push_back(std::move(alt));
        }
        if (chain.size() == 1) {
          // A lone nested group joins with the enclosing pattern.
          MergeInto(pattern, std::move(chain[0]));
        } else {
          pattern->unions.push_back(std::move(chain));
        }
      } else {
        S2RDF_RETURN_IF_ERROR(ParseTriplesSameSubject(pattern));
      }
      if (Cur().IsPunct(".")) Advance();
    }
    Advance();  // '}'
    return Status::Ok();
  }

  static void MergeInto(GraphPattern* dst, GraphPattern src) {
    for (auto& tp : src.triples) dst->triples.push_back(std::move(tp));
    for (auto& f : src.filters) dst->filters.push_back(std::move(f));
    for (auto& o : src.optionals) dst->optionals.push_back(std::move(o));
    for (auto& u : src.unions) dst->unions.push_back(std::move(u));
  }

  // Parses `VALUES ?x { t1 t2 }` and `VALUES (?x ?y) { (t1 t2) ... }`.
  // UNDEF is rejected (the engine's joins have no "matches anything"
  // binding).
  Status ParseInlineData(InlineData* data) {
    bool multi = false;
    if (Cur().IsPunct("(")) {
      multi = true;
      Advance();
      while (Cur().kind == TokenKind::kVariable) {
        data->variables.push_back(Cur().text);
        Advance();
      }
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
    } else if (Cur().kind == TokenKind::kVariable) {
      data->variables.push_back(Cur().text);
      Advance();
    }
    if (data->variables.empty()) {
      return Error("VALUES needs at least one variable");
    }
    S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "{"));
    while (!Cur().IsPunct("}")) {
      if (Cur().kind == TokenKind::kEof) {
        return Error("unterminated VALUES block");
      }
      if (Cur().IsKeyword("UNDEF")) {
        return Error("UNDEF in VALUES is not supported");
      }
      std::vector<std::string> row;
      if (multi) {
        S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
        while (!Cur().IsPunct(")")) {
          if (Cur().IsKeyword("UNDEF")) {
            return Error("UNDEF in VALUES is not supported");
          }
          PatternTerm term;
          S2RDF_RETURN_IF_ERROR(ParsePatternTerm(&term, false));
          if (term.is_variable()) {
            return Error("VALUES rows must contain constants");
          }
          row.push_back(std::move(term.value));
        }
        Advance();  // ')'
      } else {
        PatternTerm term;
        S2RDF_RETURN_IF_ERROR(ParsePatternTerm(&term, false));
        if (term.is_variable()) {
          return Error("VALUES rows must contain constants");
        }
        row.push_back(std::move(term.value));
      }
      if (row.size() != data->variables.size()) {
        return Error("VALUES row arity does not match the variable list");
      }
      data->rows.push_back(std::move(row));
    }
    Advance();  // '}'
    return Status::Ok();
  }

  Status ParseTriplesSameSubject(GraphPattern* pattern) {
    PatternTerm subject;
    S2RDF_RETURN_IF_ERROR(ParsePatternTerm(&subject, /*predicate=*/false));
    while (true) {
      PatternTerm predicate;
      S2RDF_RETURN_IF_ERROR(ParsePatternTerm(&predicate, /*predicate=*/true));
      while (true) {
        PatternTerm object;
        S2RDF_RETURN_IF_ERROR(ParsePatternTerm(&object, /*predicate=*/false));
        pattern->triples.push_back({subject, predicate, object});
        if (Cur().IsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (Cur().IsPunct(";")) {
        Advance();
        // A dangling ';' before '.' or '}' is legal SPARQL.
        if (Cur().IsPunct(".") || Cur().IsPunct("}")) break;
        continue;
      }
      break;
    }
    return Status::Ok();
  }

  StatusOr<std::string> ExpandPrefixedName(const std::string& pname) {
    size_t colon = pname.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("expected prefixed name: " + pname);
    }
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return InvalidArgumentError("undeclared prefix: '" + prefix + ":'");
    }
    return "<" + it->second + local + ">";
  }

  // Canonicalizes a literal token (already in N-Triples-ish form except
  // for possible prefixed datatype).
  StatusOr<std::string> CanonicalizeString(const std::string& text) {
    size_t caret = text.rfind("^^");
    if (caret != std::string::npos && caret + 2 < text.size() &&
        text[caret + 2] != '<') {
      S2RDF_ASSIGN_OR_RETURN(std::string dt,
                             ExpandPrefixedName(text.substr(caret + 2)));
      return text.substr(0, caret + 2) + dt;
    }
    return text;
  }

  Status ParsePatternTerm(PatternTerm* out, bool predicate) {
    switch (Cur().kind) {
      case TokenKind::kVariable:
        *out = PatternTerm::Var(Cur().text);
        Advance();
        return Status::Ok();
      case TokenKind::kIriRef:
        *out = PatternTerm::Term("<" + Cur().text + ">");
        Advance();
        return Status::Ok();
      case TokenKind::kPrefixedName: {
        if (StartsWith(Cur().text, "_:")) {
          *out = PatternTerm::Term(Cur().text);
          Advance();
          return Status::Ok();
        }
        S2RDF_ASSIGN_OR_RETURN(std::string iri,
                               ExpandPrefixedName(Cur().text));
        *out = PatternTerm::Term(std::move(iri));
        Advance();
        return Status::Ok();
      }
      case TokenKind::kKeyword:
        if (predicate && Cur().text == "A") {
          *out = PatternTerm::Term("<" + std::string(kRdfType) + ">");
          Advance();
          return Status::Ok();
        }
        return Error("unexpected keyword in triple pattern");
      case TokenKind::kString: {
        S2RDF_ASSIGN_OR_RETURN(std::string canonical,
                               CanonicalizeString(Cur().text));
        *out = PatternTerm::Term(std::move(canonical));
        Advance();
        return Status::Ok();
      }
      case TokenKind::kNumber: {
        *out = PatternTerm::Term(CanonicalNumber(Cur().text));
        Advance();
        return Status::Ok();
      }
      case TokenKind::kBoolean: {
        *out = PatternTerm::Term("\"" + Cur().text + "\"^^<" +
                                 std::string(kXsdBoolean) + ">");
        Advance();
        return Status::Ok();
      }
      default:
        return Error("expected term or variable");
    }
  }

  static std::string CanonicalNumber(const std::string& digits) {
    bool is_double = digits.find('.') != std::string::npos ||
                     digits.find('e') != std::string::npos ||
                     digits.find('E') != std::string::npos;
    return "\"" + digits + "\"^^<" +
           std::string(is_double ? kXsdDouble : kXsdInteger) + ">";
  }

  // --- FILTER constraints ---------------------------------------------

  Status ParseConstraint(engine::ExprPtr* out) {
    if (Cur().IsPunct("(")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(ParseOrExpression(out));
      return Expect(TokenKind::kPunct, ")");
    }
    return ParseBuiltinCall(out);
  }

  Status ParseBuiltinCall(engine::ExprPtr* out) {
    if (Cur().IsKeyword("REGEX")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
      if (Cur().kind != TokenKind::kVariable) {
        return Error("REGEX expects a variable first argument");
      }
      std::string var = Cur().text;
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ","));
      if (Cur().kind != TokenKind::kString) {
        return Error("REGEX expects a string pattern");
      }
      // The lexer wraps literal text in quotes; strip them.
      std::string pattern = Cur().text;
      size_t close = pattern.rfind('"');
      pattern = pattern.substr(1, close - 1);
      Advance();
      bool icase = false;
      if (Cur().IsPunct(",")) {
        Advance();
        if (Cur().kind != TokenKind::kString) {
          return Error("REGEX flags must be a string");
        }
        icase = Cur().text.find('i') != std::string::npos;
        Advance();
      }
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
      *out = engine::Expr::Regex(std::move(var), std::move(pattern), icase);
      return Status::Ok();
    }
    if (Cur().IsKeyword("BOUND")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, "("));
      if (Cur().kind != TokenKind::kVariable) {
        return Error("BOUND expects a variable");
      }
      std::string var = Cur().text;
      Advance();
      S2RDF_RETURN_IF_ERROR(Expect(TokenKind::kPunct, ")"));
      *out = engine::Expr::Bound(std::move(var));
      return Status::Ok();
    }
    return Error("expected '(' or builtin call after FILTER");
  }

  Status ParseOrExpression(engine::ExprPtr* out) {
    S2RDF_RETURN_IF_ERROR(ParseAndExpression(out));
    while (Cur().IsOperator("||")) {
      Advance();
      engine::ExprPtr rhs;
      S2RDF_RETURN_IF_ERROR(ParseAndExpression(&rhs));
      *out = engine::Expr::Or(std::move(*out), std::move(rhs));
    }
    return Status::Ok();
  }

  Status ParseAndExpression(engine::ExprPtr* out) {
    S2RDF_RETURN_IF_ERROR(ParseUnaryExpression(out));
    while (Cur().IsOperator("&&")) {
      Advance();
      engine::ExprPtr rhs;
      S2RDF_RETURN_IF_ERROR(ParseUnaryExpression(&rhs));
      *out = engine::Expr::And(std::move(*out), std::move(rhs));
    }
    return Status::Ok();
  }

  Status ParseUnaryExpression(engine::ExprPtr* out) {
    if (Cur().IsOperator("!")) {
      Advance();
      engine::ExprPtr inner;
      S2RDF_RETURN_IF_ERROR(ParseUnaryExpression(&inner));
      *out = engine::Expr::Not(std::move(inner));
      return Status::Ok();
    }
    if (Cur().IsPunct("(")) {
      Advance();
      S2RDF_RETURN_IF_ERROR(ParseOrExpression(out));
      return Expect(TokenKind::kPunct, ")");
    }
    if (Cur().IsKeyword("REGEX") || Cur().IsKeyword("BOUND")) {
      return ParseBuiltinCall(out);
    }
    return ParseComparison(out);
  }

  Status ParseComparison(engine::ExprPtr* out) {
    engine::ExprPtr left;
    S2RDF_RETURN_IF_ERROR(ParsePrimary(&left));
    if (Cur().kind == TokenKind::kOperator) {
      engine::CompareOp op;
      const std::string& text = Cur().text;
      if (text == "=") {
        op = engine::CompareOp::kEq;
      } else if (text == "!=") {
        op = engine::CompareOp::kNe;
      } else if (text == "<") {
        op = engine::CompareOp::kLt;
      } else if (text == "<=") {
        op = engine::CompareOp::kLe;
      } else if (text == ">") {
        op = engine::CompareOp::kGt;
      } else if (text == ">=") {
        op = engine::CompareOp::kGe;
      } else {
        return Error("unexpected operator in comparison");
      }
      Advance();
      engine::ExprPtr right;
      S2RDF_RETURN_IF_ERROR(ParsePrimary(&right));
      *out = engine::Expr::Compare(op, std::move(left), std::move(right));
      return Status::Ok();
    }
    *out = std::move(left);  // Bare term: effective boolean value.
    return Status::Ok();
  }

  Status ParsePrimary(engine::ExprPtr* out) {
    switch (Cur().kind) {
      case TokenKind::kVariable:
        *out = engine::Expr::Var(Cur().text);
        Advance();
        return Status::Ok();
      case TokenKind::kIriRef:
        *out = engine::Expr::Const("<" + Cur().text + ">");
        Advance();
        return Status::Ok();
      case TokenKind::kPrefixedName: {
        S2RDF_ASSIGN_OR_RETURN(std::string iri,
                               ExpandPrefixedName(Cur().text));
        *out = engine::Expr::Const(std::move(iri));
        Advance();
        return Status::Ok();
      }
      case TokenKind::kString: {
        S2RDF_ASSIGN_OR_RETURN(std::string canonical,
                               CanonicalizeString(Cur().text));
        *out = engine::Expr::Const(std::move(canonical));
        Advance();
        return Status::Ok();
      }
      case TokenKind::kNumber:
        *out = engine::Expr::Const(CanonicalNumber(Cur().text));
        Advance();
        return Status::Ok();
      case TokenKind::kBoolean:
        *out = engine::Expr::Const("\"" + Cur().text + "\"^^<" +
                                   std::string(kXsdBoolean) + ">");
        Advance();
        return Status::Ok();
      default:
        return Error("expected expression operand");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) {
  S2RDF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace s2rdf::sparql
