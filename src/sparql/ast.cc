#include "sparql/ast.h"

#include <unordered_set>

namespace s2rdf::sparql {

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> vars;
  if (subject.is_variable()) vars.push_back(subject.value);
  if (predicate.is_variable()) vars.push_back(predicate.value);
  if (object.is_variable()) vars.push_back(object.value);
  return vars;
}

std::string TriplePattern::ToString() const {
  auto render = [](const PatternTerm& t) {
    return t.is_variable() ? "?" + t.value : t.value;
  };
  return render(subject) + " " + render(predicate) + " " + render(object) +
         " .";
}

namespace {
void CollectVariables(const GraphPattern& pattern,
                      std::unordered_set<std::string>* seen,
                      std::vector<std::string>* out) {
  for (const TriplePattern& tp : pattern.triples) {
    for (const std::string& v : tp.Variables()) {
      if (seen->insert(v).second) out->push_back(v);
    }
  }
  for (const GraphPattern& opt : pattern.optionals) {
    CollectVariables(opt, seen, out);
  }
  for (const auto& chain : pattern.unions) {
    for (const GraphPattern& alt : chain) CollectVariables(alt, seen, out);
  }
  for (const InlineData& data : pattern.values) {
    for (const std::string& v : data.variables) {
      if (seen->insert(v).second) out->push_back(v);
    }
  }
  for (const auto& sub : pattern.subqueries) {
    std::vector<std::string> visible =
        sub->select_all ? sub->where.AllVariables() : sub->projection;
    for (const std::string& v : visible) {
      if (seen->insert(v).second) out->push_back(v);
    }
  }
}
}  // namespace

std::vector<std::string> GraphPattern::AllVariables() const {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  CollectVariables(*this, &seen, &out);
  return out;
}

}  // namespace s2rdf::sparql
