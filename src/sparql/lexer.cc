#include "sparql/lexer.h"

#include <cctype>

namespace s2rdf::sparql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

// Characters permitted inside prefixed names (pre:local). WatDiv local
// names are alphanumeric with dots/dashes.
bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

std::string ToUpper(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out += static_cast<char>(std::toupper(c));
  return out;
}

const char* const kKeywords[] = {
    "SELECT", "WHERE",  "FILTER", "OPTIONAL", "UNION",  "DISTINCT",
    "ORDER",  "BY",     "ASC",    "DESC",     "LIMIT",  "OFFSET",
    "PREFIX", "BASE",   "A",      "REGEX",    "BOUND",  "ASK",
    "REDUCED", "COUNT", "SUM",    "MIN",      "MAX",    "AVG",
    "SAMPLE", "GROUP",  "AS",     "HAVING",   "CONSTRUCT", "DESCRIBE",
    "VALUES", "UNDEF"};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  auto error = [&](const std::string& message) {
    return InvalidArgumentError("lex error at line " + std::to_string(line) +
                                ": " + message);
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }

    Token token;
    token.line = line;

    if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      if (i == start) return error("empty variable name");
      token.kind = TokenKind::kVariable;
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '<') {
      // IRIREF vs '<' / '<=' operator: an IRIREF has no whitespace before
      // its closing '>'.
      size_t end = i + 1;
      bool is_iri = true;
      while (true) {
        if (end >= input.size() || std::isspace(static_cast<unsigned char>(
                                       input[end]))) {
          is_iri = false;
          break;
        }
        if (input[end] == '>') break;
        ++end;
      }
      if (is_iri) {
        token.kind = TokenKind::kIriRef;
        token.text = std::string(input.substr(i + 1, end - i - 1));
        i = end + 1;
        tokens.push_back(std::move(token));
        continue;
      }
      token.kind = TokenKind::kOperator;
      if (i + 1 < input.size() && input[i + 1] == '=') {
        token.text = "<=";
        i += 2;
      } else {
        token.text = "<";
        ++i;
      }
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i + 1;
      size_t j = start;
      while (j < input.size()) {
        if (input[j] == '\\') {
          j += 2;
          continue;
        }
        if (input[j] == quote) break;
        if (input[j] == '\n') ++line;
        ++j;
      }
      if (j >= input.size()) return error("unterminated string literal");
      std::string body(input.substr(start, j - start));
      i = j + 1;
      // Optional @lang or ^^<iri> / ^^pre:name suffix.
      std::string suffix;
      if (i < input.size() && input[i] == '@') {
        size_t s = i + 1;
        while (s < input.size() && (IsIdentChar(input[s]))) ++s;
        suffix = "@" + std::string(input.substr(i + 1, s - i - 1));
        i = s;
      } else if (i + 1 < input.size() && input[i] == '^' &&
                 input[i + 1] == '^') {
        i += 2;
        if (i < input.size() && input[i] == '<') {
          size_t end = input.find('>', i);
          if (end == std::string_view::npos) {
            return error("unterminated datatype IRI");
          }
          suffix = "^^<" + std::string(input.substr(i + 1, end - i - 1)) + ">";
          i = end + 1;
        } else {
          size_t s = i;
          while (s < input.size() && IsPnameChar(input[s])) ++s;
          suffix = "^^" + std::string(input.substr(i, s - i));
          i = s;
        }
      }
      token.kind = TokenKind::kString;
      token.text = "\"" + body + "\"" + suffix;
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '+' || c == '-') && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '+' || c == '-') ++i;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.' || input[i] == 'e' || input[i] == 'E')) {
        // A '.' followed by non-digit terminates the number (statement dot).
        if (input[i] == '.' &&
            (i + 1 >= input.size() ||
             !std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
          break;
        }
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '_' && i + 1 < input.size() && input[i + 1] == ':') {
      size_t start = i;
      i += 2;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      token.kind = TokenKind::kPrefixedName;  // Blank nodes ride this lane.
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsPnameChar(input[i])) ++i;
      // Trailing dots belong to statement punctuation, not the name.
      size_t end = i;
      while (end > start && input[end - 1] == '.') --end;
      i = end;
      std::string text(input.substr(start, end - start));
      std::string upper = ToUpper(text);
      if (text.find(':') != std::string::npos) {
        token.kind = TokenKind::kPrefixedName;
        token.text = std::move(text);
      } else if (upper == "TRUE" || upper == "FALSE") {
        token.kind = TokenKind::kBoolean;
        token.text = upper == "TRUE" ? "true" : "false";
      } else if (IsKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = std::move(upper);
      } else {
        // Bare identifier: treat as a prefixed-name-like token; the
        // parser rejects it with a useful message if unexpected.
        token.kind = TokenKind::kPrefixedName;
        token.text = std::move(text);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    // Operators and punctuation.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == ">=" || two == "&&" || two == "||") {
      token.kind = TokenKind::kOperator;
      token.text = std::string(two);
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '>' || c == '=' || c == '!') {
      token.kind = TokenKind::kOperator;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '{' || c == '}' || c == '(' || c == ')' || c == '.' ||
        c == ';' || c == ',' || c == '*') {
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == ':') {
      // Default-namespace prefixed name, e.g. ":local".
      size_t start = i;
      ++i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      token.kind = TokenKind::kPrefixedName;
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace s2rdf::sparql
