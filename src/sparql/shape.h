#ifndef S2RDF_SPARQL_SHAPE_H_
#define S2RDF_SPARQL_SHAPE_H_

#include <string>
#include <vector>

#include "sparql/ast.h"

// BGP shape analysis per the paper's Sec. 2.1 taxonomy (Fig. 3): star,
// linear, snowflake, and their compositions. Used to sanity-check that
// workload queries exercise the shapes their category names promise, and
// available to applications for workload characterization.
//
// Definitions, made precise:
//   - The *pattern graph* has one node per triple pattern and an edge
//     between patterns sharing a variable.
//   - `diameter` is the longest shortest path in the pattern graph,
//     counted in edges (a star is 1; a chain of n patterns is n - 1; the
//     paper's prose counts patterns for chains, i.e. this value + 1).
//   - kStar: >= 3 patterns all sharing one variable.
//   - kLinear: the pattern graph is a simple path (2+ patterns).
//   - kSnowflake: connected and the *join-variable graph* (join
//     variables as nodes, an edge when two of them co-occur in one
//     pattern) is acyclic — stars connected by paths.
//   - kComplex: cyclic join structure.
//   - kDisconnected: cross products between components.
//
// Note that WatDiv's "C" (complex) *category* is about result sizes and
// composition; structurally C1/C2 are snowflakes and C3 is a star, which
// is what this classifier reports.

namespace s2rdf::sparql {

enum class QueryShape {
  kSingle,        // One triple pattern.
  kStar,
  kLinear,
  kSnowflake,
  kComplex,
  kDisconnected,
};

const char* QueryShapeName(QueryShape shape);

struct ShapeInfo {
  QueryShape shape = QueryShape::kSingle;
  // Longest shortest pattern-to-pattern chain, in edges.
  int diameter = 0;
  int num_patterns = 0;
  // A variable occurring in every pattern (stars), or "".
  std::string center_variable;
};

// Analyzes the BGP's shape. Ignores FILTER/OPTIONAL/UNION (the paper's
// taxonomy is defined on BGPs).
ShapeInfo AnalyzeBgpShape(const std::vector<TriplePattern>& bgp);

}  // namespace s2rdf::sparql

#endif  // S2RDF_SPARQL_SHAPE_H_
