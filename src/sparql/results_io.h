#ifndef S2RDF_SPARQL_RESULTS_IO_H_
#define S2RDF_SPARQL_RESULTS_IO_H_

#include <string>

#include "engine/table.h"
#include "rdf/dictionary.h"

// W3C SPARQL query-result serializers: the interchange formats a SPARQL
// endpoint speaks. Implemented:
//   - SPARQL 1.1 Query Results JSON Format,
//   - SPARQL Query Results XML Format,
//   - CSV and TSV (RFC 4180-style CSV; TSV uses N-Triples term syntax).
// Input is a solution table (columns = variables, cells = dictionary
// ids; kNullTermId = unbound) plus the dictionary.

namespace s2rdf::sparql {

std::string ResultsToJson(const engine::Table& table,
                          const rdf::Dictionary& dict);
std::string ResultsToXml(const engine::Table& table,
                         const rdf::Dictionary& dict);
std::string ResultsToCsv(const engine::Table& table,
                         const rdf::Dictionary& dict);
std::string ResultsToTsv(const engine::Table& table,
                         const rdf::Dictionary& dict);

// ASK results.
std::string AskToJson(bool result);
std::string AskToXml(bool result);

}  // namespace s2rdf::sparql

#endif  // S2RDF_SPARQL_RESULTS_IO_H_
