#ifndef S2RDF_BASELINES_SEMPALA_ENGINE_H_
#define S2RDF_BASELINES_SEMPALA_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/layouts.h"
#include "engine/exec_context.h"
#include "engine/table.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "storage/catalog.h"

// Sempala analogue: a unified property table whose star-shaped
// sub-patterns ("triple groups") are answered by a single scan without
// joins, with multi-valued predicates handled by row duplication (the
// paper's Table 1 / Fig. 7) or auxiliary tables. The characteristic
// behaviour the paper observes — star queries need no joins but every
// group pays a full property-table scan — falls out of this design.

namespace s2rdf::baselines {

struct SempalaOptions {
  core::PropertyTableStrategy strategy =
      core::PropertyTableStrategy::kAuxiliaryTables;
  int num_partitions = 9;
};

struct SempalaResult {
  engine::Table table;
  engine::ExecMetrics metrics;
  uint64_t star_groups = 0;
  double wall_ms = 0.0;
};

class SempalaEngine {
 public:
  // Builds the property table (and auxiliary tables) for `graph`, which
  // must outlive the engine.
  static StatusOr<std::unique_ptr<SempalaEngine>> Create(
      const rdf::Graph* graph, SempalaOptions options);

  // Parses and evaluates a SELECT query over a plain BGP (with FILTER
  // and solution modifiers).
  StatusOr<SempalaResult> Execute(std::string_view sparql);

  const core::PropertyTableBuildStats& build_stats() const {
    return build_stats_;
  }
  const storage::Catalog& catalog() const { return catalog_; }

 private:
  SempalaEngine(const rdf::Graph* graph, SempalaOptions options)
      : graph_(*graph), options_(options), catalog_("") {}

  // Evaluates one star group (patterns sharing a subject).
  StatusOr<engine::Table> EvaluateStarGroup(
      const std::vector<const sparql::TriplePattern*>& group,
      engine::ExecContext* ctx);

  const rdf::Graph& graph_;
  SempalaOptions options_;
  storage::Catalog catalog_;
  core::PropertyTableBuildStats build_stats_;
  // Predicate id -> PT column name for inlined predicates.
  std::unordered_map<rdf::TermId, std::string> inline_columns_;
  std::unordered_set<rdf::TermId> aux_predicates_;
};

}  // namespace s2rdf::baselines

#endif  // S2RDF_BASELINES_SEMPALA_ENGINE_H_
