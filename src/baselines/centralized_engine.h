#ifndef S2RDF_BASELINES_CENTRALIZED_ENGINE_H_
#define S2RDF_BASELINES_CENTRALIZED_ENGINE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "baselines/permutation_index.h"
#include "common/status.h"
#include "engine/table.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"

// Single-node BGP evaluation over the sextuple permutation indexes using
// greedy selectivity ordering and index nested-loop joins — the
// execution model of centralized stores such as Virtuoso/RDF-3X and of
// H2RDF+'s centralized mode. Excellent on selective patterns, degrades
// on unselective ones (large intermediate binding sets), which is
// exactly the behaviour the paper's Sec. 7 observes.

namespace s2rdf::baselines {

struct CentralizedResult {
  engine::Table table;  // Columns = variables in first-appearance order.
  uint64_t index_lookups = 0;    // Range-scan probes issued.
  uint64_t scanned_triples = 0;  // Triples touched by those scans.
  double wall_ms = 0.0;
};

class CentralizedBgpEngine {
 public:
  // `store` and `dict` must outlive the engine.
  CentralizedBgpEngine(const PermutationIndexStore* store,
                       const rdf::Dictionary* dict)
      : store_(*store), dict_(*dict) {}

  // Evaluates a basic graph pattern.
  StatusOr<CentralizedResult> ExecuteBgp(
      const std::vector<sparql::TriplePattern>& bgp) const;

  // Parses and evaluates a SELECT query whose WHERE clause is a plain
  // BGP (with optional FILTER / DISTINCT / ORDER BY / LIMIT / OFFSET).
  StatusOr<CentralizedResult> Execute(std::string_view sparql) const;

 private:
  const PermutationIndexStore& store_;
  const rdf::Dictionary& dict_;
};

}  // namespace s2rdf::baselines

#endif  // S2RDF_BASELINES_CENTRALIZED_ENGINE_H_
