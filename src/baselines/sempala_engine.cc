#include "baselines/sempala_engine.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/clock.h"
#include "core/layout_names.h"
#include "engine/operators.h"
#include "sparql/parser.h"

namespace s2rdf::baselines {

namespace {

using sparql::PatternTerm;
using sparql::TriplePattern;

// Key identifying a star group: the subject position.
std::string GroupKey(const PatternTerm& subject) {
  return (subject.is_variable() ? "v:" : "t:") + subject.value;
}

}  // namespace

StatusOr<std::unique_ptr<SempalaEngine>> SempalaEngine::Create(
    const rdf::Graph* graph, SempalaOptions options) {
  auto engine =
      std::unique_ptr<SempalaEngine>(new SempalaEngine(graph, options));
  S2RDF_ASSIGN_OR_RETURN(
      engine->build_stats_,
      core::BuildPropertyTable(*graph, options.strategy, &engine->catalog_));
  for (rdf::TermId p : engine->build_stats_.single_valued) {
    engine->inline_columns_[p] =
        core::VpTableName(graph->dictionary(), p);
  }
  for (rdf::TermId p : engine->build_stats_.multi_valued) {
    engine->aux_predicates_.insert(p);
  }
  return engine;
}

StatusOr<engine::Table> SempalaEngine::EvaluateStarGroup(
    const std::vector<const TriplePattern*>& group,
    engine::ExecContext* ctx) {
  const rdf::Dictionary& dict = graph_.dictionary();
  const PatternTerm& subject = group[0]->subject;
  const bool subject_is_var = subject.is_variable();
  // The subject column name in every produced relation.
  const std::string subject_var = subject_is_var ? subject.value : "__s";

  // Partition the group's patterns: first use of an inlined predicate is
  // answered from the PT scan; auxiliary predicates and repeated uses of
  // the same predicate need separate subject joins.
  std::vector<const TriplePattern*> pt_patterns;
  std::vector<const TriplePattern*> join_patterns;
  std::unordered_set<rdf::TermId> used_columns;
  for (const TriplePattern* tp : group) {
    if (tp->predicate.is_variable()) {
      return UnimplementedError(
          "Sempala baseline requires bound predicates");
    }
    std::optional<rdf::TermId> p = dict.Find(tp->predicate.value);
    if (!p.has_value()) {
      // Predicate absent from the data: the star has no results.
      engine::Table empty({subject_var});
      return empty;
    }
    if (inline_columns_.contains(*p) && used_columns.insert(*p).second) {
      pt_patterns.push_back(tp);
    } else {
      join_patterns.push_back(tp);
    }
  }

  engine::Table result(std::vector<std::string>{});
  bool have_result = false;

  if (!pt_patterns.empty()) {
    S2RDF_ASSIGN_OR_RETURN(const engine::Table* pt,
                           catalog_.GetTable(core::PropertyTableName()));
    engine::ScanSpec spec;
    // Track first column of each variable for repeated-variable checks.
    std::vector<std::pair<std::string, int>> var_first;
    auto bind_var = [&](const std::string& var, int col) {
      for (const auto& [v, first_col] : var_first) {
        if (v == var) {
          spec.equal_columns.emplace_back(first_col, col);
          return;
        }
      }
      var_first.emplace_back(var, col);
      spec.projections.emplace_back(col, var);
    };

    int s_col = pt->ColumnIndex("s");
    if (subject_is_var) {
      bind_var(subject_var, s_col);
    } else {
      spec.conditions.emplace_back(
          s_col, dict.Find(subject.value).value_or(engine::kNullTermId));
    }
    for (const TriplePattern* tp : pt_patterns) {
      rdf::TermId p = *dict.Find(tp->predicate.value);
      int col = pt->ColumnIndex(inline_columns_.at(p));
      if (tp->object.is_variable()) {
        spec.not_null_columns.push_back(col);
        bind_var(tp->object.value, col);
      } else {
        spec.conditions.emplace_back(
            col,
            dict.Find(tp->object.value).value_or(engine::kNullTermId));
      }
    }
    result = engine::ScanSelectProject(*pt, spec, ctx);
    // Under row duplication the cross product introduces duplicate
    // solutions for the projected subset; dedup restores set semantics
    // (the SELECT DISTINCT of the paper's Fig. 7).
    if (options_.strategy == core::PropertyTableStrategy::kDuplication) {
      result = engine::Distinct(result, ctx);
    }
    have_result = true;
  }

  // Auxiliary / repeated predicates: per-pattern scans joined on the
  // subject.
  for (const TriplePattern* tp : join_patterns) {
    rdf::TermId p = *dict.Find(tp->predicate.value);
    const engine::Table* base = nullptr;
    int s_col = 0;
    int o_col = 1;
    if (aux_predicates_.contains(p)) {
      S2RDF_ASSIGN_OR_RETURN(
          base, catalog_.GetTable(core::PropertyAuxTableName(dict, p)));
    } else {
      // Repeated inlined predicate: self-join the PT on this column.
      S2RDF_ASSIGN_OR_RETURN(base,
                             catalog_.GetTable(core::PropertyTableName()));
      s_col = base->ColumnIndex("s");
      o_col = base->ColumnIndex(inline_columns_.at(p));
    }
    engine::ScanSpec spec;
    if (subject_is_var) {
      spec.projections.emplace_back(s_col, subject_var);
    } else {
      spec.conditions.emplace_back(
          s_col, dict.Find(subject.value).value_or(engine::kNullTermId));
    }
    if (tp->object.is_variable()) {
      spec.not_null_columns.push_back(o_col);
      if (tp->object.value == subject_var && subject_is_var) {
        spec.equal_columns.emplace_back(s_col, o_col);
      } else {
        spec.projections.emplace_back(o_col, tp->object.value);
      }
    } else {
      spec.conditions.emplace_back(
          o_col, dict.Find(tp->object.value).value_or(engine::kNullTermId));
    }
    engine::Table scan = engine::ScanSelectProject(*base, spec, ctx);
    if (!aux_predicates_.contains(p) &&
        options_.strategy == core::PropertyTableStrategy::kDuplication) {
      scan = engine::Distinct(scan, ctx);
    }
    if (!subject_is_var && scan.NumColumns() == 0) {
      // Fully-bound pattern: existence check.
      if (scan.NumRows() == 0) {
        return engine::Table(result.column_names());
      }
      continue;
    }
    result = have_result ? engine::HashJoin(result, scan, ctx)
                         : std::move(scan);
    have_result = true;
  }

  if (!have_result) {
    return InternalError("star group produced no relations");
  }
  return result;
}

StatusOr<SempalaResult> SempalaEngine::Execute(std::string_view sparql) {
  auto start = MonotonicNow();
  S2RDF_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  if (!query.aggregates.empty() || !query.group_by.empty() ||
      !query.where.subqueries.empty() || !query.where.values.empty() ||
      query.form != sparql::QueryForm::kSelect) {
    return UnimplementedError(
        "baseline engines do not support SPARQL 1.1 aggregates or "
        "subqueries");
  }
  if (!query.where.optionals.empty() || !query.where.unions.empty()) {
    return UnimplementedError(
        "Sempala baseline supports plain BGP queries only");
  }
  if (query.where.triples.empty()) {
    return InvalidArgumentError("empty BGP");
  }

  // Triple-group decomposition: patterns sharing a subject form a star.
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<const TriplePattern*>> groups;
  for (const TriplePattern& tp : query.where.triples) {
    std::string key = GroupKey(tp.subject);
    if (!groups.contains(key)) group_order.push_back(key);
    groups[key].push_back(&tp);
  }

  engine::ExecContext ctx;
  ctx.num_partitions = options_.num_partitions;
  SempalaResult result;
  result.star_groups = groups.size();

  // Evaluate groups, then join smallest-first avoiding cross joins.
  std::vector<engine::Table> group_tables;
  for (const std::string& key : group_order) {
    S2RDF_ASSIGN_OR_RETURN(engine::Table t,
                           EvaluateStarGroup(groups[key], &ctx));
    group_tables.push_back(std::move(t));
  }
  std::vector<size_t> remaining(group_tables.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;
  auto shares_column = [&](const engine::Table& a, const engine::Table& b) {
    for (const std::string& name : b.column_names()) {
      if (a.ColumnIndex(name) >= 0) return true;
    }
    return false;
  };
  // Start with the smallest group.
  std::sort(remaining.begin(), remaining.end(), [&](size_t a, size_t b) {
    return group_tables[a].NumRows() < group_tables[b].NumRows();
  });
  engine::Table joined = std::move(group_tables[remaining[0]]);
  remaining.erase(remaining.begin());
  while (!remaining.empty()) {
    size_t pick = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (shares_column(joined, group_tables[remaining[i]])) {
        pick = i;
        break;
      }
    }
    if (pick == remaining.size()) pick = 0;  // Forced cross join.
    joined = engine::HashJoin(joined, group_tables[remaining[pick]], &ctx);
    remaining.erase(remaining.begin() + static_cast<long>(pick));
  }

  const rdf::Dictionary& dict = graph_.dictionary();
  for (const engine::ExprPtr& filter : query.where.filters) {
    joined = engine::Filter(joined, *filter, dict, &ctx);
  }
  std::vector<std::string> projection =
      query.select_all ? query.where.AllVariables() : query.projection;
  joined = engine::Project(joined, projection);
  if (query.distinct) joined = engine::Distinct(joined, &ctx);
  if (!query.order_by.empty()) {
    joined = engine::OrderBy(joined, query.order_by, dict);
  }
  if (query.offset > 0 || query.limit != engine::kNoLimit) {
    joined = engine::Slice(joined, query.offset, query.limit);
  }

  ctx.metrics.output_tuples = joined.NumRows();
  result.table = std::move(joined);
  result.metrics = ctx.metrics;
  result.wall_ms = MillisSince(start);
  return result;
}

}  // namespace s2rdf::baselines
