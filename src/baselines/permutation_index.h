#ifndef S2RDF_BASELINES_PERMUTATION_INDEX_H_
#define S2RDF_BASELINES_PERMUTATION_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rdf/graph.h"
#include "rdf/triple.h"

// Sextuple clustered triple indexes (SPO/SOP/PSO/POS/OSP/OPS), the
// storage scheme of Hexastore, RDF-3X and — as sorted HBase row keys —
// H2RDF+. Any triple pattern with bound positions maps to a contiguous
// range of exactly one permutation, reachable by binary search; this is
// the baselines' stand-in for HBase range scans / Virtuoso's indexes.

namespace s2rdf::baselines {

enum class Permutation { kSpo, kSop, kPso, kPos, kOsp, kOps };

// A triple pattern with optional bound positions (nullopt = variable).
struct IndexPattern {
  std::optional<rdf::TermId> subject;
  std::optional<rdf::TermId> predicate;
  std::optional<rdf::TermId> object;

  int BoundCount() const {
    return (subject.has_value() ? 1 : 0) + (predicate.has_value() ? 1 : 0) +
           (object.has_value() ? 1 : 0);
  }
};

class PermutationIndexStore {
 public:
  // Builds all six sorted permutations of the (deduplicated) graph.
  explicit PermutationIndexStore(const rdf::Graph& graph);

  // The contiguous range of triples matching `pattern`, served from the
  // best permutation for its bound positions.
  std::span<const rdf::Triple> Scan(const IndexPattern& pattern) const;

  // Exact cardinality of `pattern` (range width) — H2RDF+'s aggregated
  // index statistics provide the same quantity.
  uint64_t CountMatches(const IndexPattern& pattern) const;

  // Which permutation Scan would use.
  static Permutation ChoosePermutation(const IndexPattern& pattern);

  uint64_t num_triples() const { return num_triples_; }
  // Total tuples across all six permutations (store size accounting).
  uint64_t TotalIndexTuples() const { return num_triples_ * 6; }

 private:
  std::vector<rdf::Triple> indexes_[6];
  uint64_t num_triples_ = 0;
};

}  // namespace s2rdf::baselines

#endif  // S2RDF_BASELINES_PERMUTATION_INDEX_H_
