#include "baselines/h2rdf_engine.h"

#include <chrono>

#include "common/clock.h"
#include "sparql/parser.h"

namespace s2rdf::baselines {

H2RdfEngine::H2RdfEngine(const rdf::Graph* graph, H2RdfOptions options)
    : graph_(*graph),
      options_(std::move(options)),
      store_(*graph),
      centralized_(&store_, &graph->dictionary()),
      mapreduce_(graph, options_.mr) {}

StatusOr<uint64_t> H2RdfEngine::EstimateInput(
    std::string_view sparql) const {
  S2RDF_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  const rdf::Dictionary& dict = graph_.dictionary();
  uint64_t worst = 0;
  for (const sparql::TriplePattern& tp : query.where.triples) {
    IndexPattern pattern;
    auto resolve = [&](const sparql::PatternTerm& term,
                       std::optional<rdf::TermId>* slot) {
      if (term.is_variable()) return;
      *slot = dict.Find(term.value).value_or(engine::kNullTermId);
    };
    resolve(tp.subject, &pattern.subject);
    resolve(tp.predicate, &pattern.predicate);
    resolve(tp.object, &pattern.object);
    worst = std::max(worst, store_.CountMatches(pattern));
  }
  return worst;
}

StatusOr<H2RdfResult> H2RdfEngine::Execute(std::string_view sparql) const {
  auto start = MonotonicNow();
  S2RDF_ASSIGN_OR_RETURN(uint64_t estimate, EstimateInput(sparql));
  H2RdfResult result;
  if (estimate <= options_.centralized_input_limit) {
    S2RDF_ASSIGN_OR_RETURN(CentralizedResult central,
                           centralized_.Execute(sparql));
    result.table = std::move(central.table);
    result.centralized = true;
  } else {
    S2RDF_ASSIGN_OR_RETURN(MrQueryResult mr, mapreduce_.Execute(sparql));
    result.table = std::move(mr.table);
    result.centralized = false;
    result.jobs = mr.jobs;
  }
  result.wall_ms = MillisSince(start);
  return result;
}

}  // namespace s2rdf::baselines
