#include "baselines/permutation_index.h"

#include <algorithm>
#include <unordered_set>

namespace s2rdf::baselines {

namespace {

using rdf::TermId;
using rdf::Triple;

// Component order of each permutation, as (first, second, third)
// accessors into a Triple.
struct Order {
  TermId Triple::*first;
  TermId Triple::*second;
  TermId Triple::*third;
};

constexpr Order kOrders[6] = {
    {&Triple::subject, &Triple::predicate, &Triple::object},    // SPO
    {&Triple::subject, &Triple::object, &Triple::predicate},    // SOP
    {&Triple::predicate, &Triple::subject, &Triple::object},    // PSO
    {&Triple::predicate, &Triple::object, &Triple::subject},    // POS
    {&Triple::object, &Triple::subject, &Triple::predicate},    // OSP
    {&Triple::object, &Triple::predicate, &Triple::subject},    // OPS
};

// The bound prefix of `pattern` under permutation `perm`:
// (first, second, third) with nullopt once a variable is hit.
struct Prefix {
  std::optional<TermId> first;
  std::optional<TermId> second;
  std::optional<TermId> third;
};

Prefix PrefixFor(const IndexPattern& pattern, Permutation perm) {
  auto get = [&](TermId Triple::*member) -> std::optional<TermId> {
    if (member == &Triple::subject) return pattern.subject;
    if (member == &Triple::predicate) return pattern.predicate;
    return pattern.object;
  };
  const Order& order = kOrders[static_cast<int>(perm)];
  Prefix prefix;
  prefix.first = get(order.first);
  if (prefix.first.has_value()) {
    prefix.second = get(order.second);
    if (prefix.second.has_value()) prefix.third = get(order.third);
  }
  return prefix;
}

}  // namespace

Permutation PermutationIndexStore::ChoosePermutation(
    const IndexPattern& pattern) {
  const bool s = pattern.subject.has_value();
  const bool p = pattern.predicate.has_value();
  const bool o = pattern.object.has_value();
  if (s && p) return Permutation::kSpo;  // Also covers s&p&o.
  if (s && o) return Permutation::kSop;
  if (p && o) return Permutation::kPos;
  if (s) return Permutation::kSpo;
  if (p) return Permutation::kPso;
  if (o) return Permutation::kOsp;
  return Permutation::kSpo;
}

PermutationIndexStore::PermutationIndexStore(const rdf::Graph& graph) {
  // Dedup (RDF graphs are sets).
  std::vector<Triple> triples;
  std::unordered_set<Triple, rdf::TripleHash> seen;
  triples.reserve(graph.NumTriples());
  for (const Triple& t : graph.triples()) {
    if (seen.insert(t).second) triples.push_back(t);
  }
  num_triples_ = triples.size();
  for (int i = 0; i < 6; ++i) {
    const Order& order = kOrders[i];
    indexes_[i] = triples;
    std::sort(indexes_[i].begin(), indexes_[i].end(),
              [&order](const Triple& a, const Triple& b) {
                if (a.*(order.first) != b.*(order.first)) {
                  return a.*(order.first) < b.*(order.first);
                }
                if (a.*(order.second) != b.*(order.second)) {
                  return a.*(order.second) < b.*(order.second);
                }
                return a.*(order.third) < b.*(order.third);
              });
  }
}

std::span<const rdf::Triple> PermutationIndexStore::Scan(
    const IndexPattern& pattern) const {
  Permutation perm = ChoosePermutation(pattern);
  const Order& order = kOrders[static_cast<int>(perm)];
  const std::vector<Triple>& index = indexes_[static_cast<int>(perm)];
  Prefix prefix = PrefixFor(pattern, perm);

  // Compare by the bound prefix only.
  auto less = [&](const Triple& t, const Prefix& pre) {
    if (!pre.first.has_value()) return false;
    if (t.*(order.first) != *pre.first) return t.*(order.first) < *pre.first;
    if (!pre.second.has_value()) return false;
    if (t.*(order.second) != *pre.second) {
      return t.*(order.second) < *pre.second;
    }
    if (!pre.third.has_value()) return false;
    return t.*(order.third) < *pre.third;
  };
  auto greater = [&](const Prefix& pre, const Triple& t) {
    if (!pre.first.has_value()) return false;
    if (t.*(order.first) != *pre.first) return *pre.first < t.*(order.first);
    if (!pre.second.has_value()) return false;
    if (t.*(order.second) != *pre.second) {
      return *pre.second < t.*(order.second);
    }
    if (!pre.third.has_value()) return false;
    return *pre.third < t.*(order.third);
  };

  auto begin = std::lower_bound(index.begin(), index.end(), prefix, less);
  auto end = std::upper_bound(begin, index.end(), prefix, greater);
  return {index.data() + (begin - index.begin()),
          static_cast<size_t>(end - begin)};
}

uint64_t PermutationIndexStore::CountMatches(
    const IndexPattern& pattern) const {
  return Scan(pattern).size();
}

}  // namespace s2rdf::baselines
