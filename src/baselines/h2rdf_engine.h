#ifndef S2RDF_BASELINES_H2RDF_ENGINE_H_
#define S2RDF_BASELINES_H2RDF_ENGINE_H_

#include <memory>
#include <string_view>

#include "baselines/centralized_engine.h"
#include "baselines/mr_sparql_engine.h"
#include "baselines/permutation_index.h"
#include "common/status.h"
#include "rdf/graph.h"

// H2RDF+ analogue: six clustered triple indexes with aggregated
// statistics, plus an adaptive planner that executes selective queries
// centrally (index merge/nested-loop joins on one node) and ships
// unselective ones to MapReduce. The paper's Sec. 7.2 shows exactly this
// bimodal behaviour — competitive on selective queries, orders of
// magnitude slower once the cost model picks the MapReduce path.

namespace s2rdf::baselines {

struct H2RdfOptions {
  // A query whose largest triple-pattern cardinality estimate exceeds
  // this bound is executed via MapReduce (H2RDF+ estimates join input
  // size from its aggregated index statistics the same way).
  uint64_t centralized_input_limit = 100000;
  MrEngineOptions mr;
};

struct H2RdfResult {
  engine::Table table;
  bool centralized = true;
  uint64_t jobs = 0;  // MapReduce jobs (0 when centralized).
  double wall_ms = 0.0;
};

class H2RdfEngine {
 public:
  // `graph` must outlive the engine. Builds the permutation indexes.
  H2RdfEngine(const rdf::Graph* graph, H2RdfOptions options);

  StatusOr<H2RdfResult> Execute(std::string_view sparql) const;

  // Estimated centralized input size (max pattern cardinality) used by
  // the adaptive decision; exposed for tests.
  StatusOr<uint64_t> EstimateInput(std::string_view sparql) const;

  const PermutationIndexStore& store() const { return store_; }

 private:
  const rdf::Graph& graph_;
  H2RdfOptions options_;
  PermutationIndexStore store_;
  CentralizedBgpEngine centralized_;
  MrSparqlEngine mapreduce_;
};

}  // namespace s2rdf::baselines

#endif  // S2RDF_BASELINES_H2RDF_ENGINE_H_
