#include "baselines/mr_sparql_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "common/file_util.h"
#include "engine/operators.h"
#include "mapreduce/record.h"
#include "sparql/parser.h"

namespace s2rdf::baselines {

namespace {

using mapreduce::Record;
using rdf::TermId;
using sparql::PatternTerm;
using sparql::TriplePattern;

// A materialized solution relation: a record file whose record values
// are term ids aligned to `schema`.
struct Relation {
  std::string path;
  std::vector<std::string> schema;
  uint64_t rows = 0;
};

std::vector<std::string> SharedVars(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> shared;
  for (const std::string& v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) shared.push_back(v);
  }
  return shared;
}

// Extracts the solution relation of one triple pattern by a full scan of
// the (deduplicated) dataset — what a SHARD/PigSPARQL map phase does.
StatusOr<Relation> MaterializePattern(const rdf::Graph& graph,
                                      const TriplePattern& tp,
                                      const std::string& path) {
  Relation rel;
  rel.path = path;
  const rdf::Dictionary& dict = graph.dictionary();

  // Resolve bound positions; an absent constant matches nothing.
  std::optional<TermId> want_s;
  std::optional<TermId> want_p;
  std::optional<TermId> want_o;
  bool impossible = false;
  auto resolve = [&](const PatternTerm& term, std::optional<TermId>* out) {
    if (term.is_variable()) return;
    std::optional<TermId> id = dict.Find(term.value);
    if (!id.has_value()) impossible = true;
    *out = id;
  };
  resolve(tp.subject, &want_s);
  resolve(tp.predicate, &want_p);
  resolve(tp.object, &want_o);

  // Distinct variables in s/p/o order.
  std::vector<std::pair<std::string, int>> var_positions;  // var, 0/1/2.
  const PatternTerm* terms[3] = {&tp.subject, &tp.predicate, &tp.object};
  for (int i = 0; i < 3; ++i) {
    if (!terms[i]->is_variable()) continue;
    bool seen = false;
    for (const auto& [v, pos] : var_positions) {
      if (v == terms[i]->value) seen = true;
    }
    if (!seen) var_positions.emplace_back(terms[i]->value, i);
  }
  for (const auto& [v, pos] : var_positions) rel.schema.push_back(v);

  std::vector<Record> records;
  if (!impossible) {
    std::unordered_set<rdf::Triple, rdf::TripleHash> seen_triples;
    for (const rdf::Triple& t : graph.triples()) {
      if (!seen_triples.insert(t).second) continue;
      if (want_s.has_value() && t.subject != *want_s) continue;
      if (want_p.has_value() && t.predicate != *want_p) continue;
      if (want_o.has_value() && t.object != *want_o) continue;
      const TermId values[3] = {t.subject, t.predicate, t.object};
      // Repeated variables must agree.
      bool consistent = true;
      for (int i = 0; i < 3 && consistent; ++i) {
        for (int j = i + 1; j < 3; ++j) {
          if (terms[i]->is_variable() && terms[j]->is_variable() &&
              terms[i]->value == terms[j]->value &&
              values[i] != values[j]) {
            consistent = false;
            break;
          }
        }
      }
      if (!consistent) continue;
      Record record;
      for (const auto& [v, pos] : var_positions) {
        record.value.push_back(values[pos]);
      }
      records.push_back(std::move(record));
    }
  }
  rel.rows = records.size();
  S2RDF_RETURN_IF_ERROR(mapreduce::WriteRecordFile(path, records));
  return rel;
}

// Runs one n-ary repartition-join job over `inputs` on `join_vars`
// (every input's schema contains all join vars; empty = cross join).
StatusOr<Relation> JoinJob(const MrEngineOptions& options,
                           const std::vector<Relation>& inputs,
                           const std::vector<std::string>& join_vars,
                           const std::string& out_path, uint64_t job_seq,
                           mapreduce::JobMetrics* total_metrics) {
  // Tag each input's records (value = [tag, bindings...]).
  std::vector<std::string> tagged_paths;
  std::vector<std::vector<std::string>> schemas;
  for (size_t tag = 0; tag < inputs.size(); ++tag) {
    S2RDF_ASSIGN_OR_RETURN(std::vector<Record> records,
                           mapreduce::ReadRecordFile(inputs[tag].path));
    for (Record& r : records) {
      r.value.insert(r.value.begin(), static_cast<uint32_t>(tag));
    }
    std::string path = options.work_dir + "/job" + std::to_string(job_seq) +
                       "_in" + std::to_string(tag) + ".rec";
    S2RDF_RETURN_IF_ERROR(mapreduce::WriteRecordFile(path, records));
    tagged_paths.push_back(path);
    schemas.push_back(inputs[tag].schema);
  }

  // Output schema: union of input schemas in tag order.
  Relation out;
  out.path = out_path;
  for (const auto& schema : schemas) {
    for (const std::string& v : schema) {
      if (std::find(out.schema.begin(), out.schema.end(), v) ==
          out.schema.end()) {
        out.schema.push_back(v);
      }
    }
  }

  // Per-tag join-key positions and output positions.
  std::vector<std::vector<size_t>> key_positions(schemas.size());
  for (size_t tag = 0; tag < schemas.size(); ++tag) {
    for (const std::string& v : join_vars) {
      auto it = std::find(schemas[tag].begin(), schemas[tag].end(), v);
      if (it == schemas[tag].end()) {
        return InternalError("join variable missing from input schema: " + v);
      }
      key_positions[tag].push_back(
          static_cast<size_t>(it - schemas[tag].begin()));
    }
  }

  mapreduce::Mapper mapper = [&](const Record& input,
                                 std::vector<Record>* emit) {
    uint32_t tag = input.value[0];
    Record keyed = input;
    keyed.key.clear();
    for (size_t pos : key_positions[tag]) {
      keyed.key.push_back(input.value[1 + pos]);
    }
    emit->push_back(std::move(keyed));
  };

  const size_t out_width = out.schema.size();
  // Output-column index of each (tag, input column).
  std::vector<std::vector<size_t>> out_positions(schemas.size());
  for (size_t tag = 0; tag < schemas.size(); ++tag) {
    for (const std::string& v : schemas[tag]) {
      auto it = std::find(out.schema.begin(), out.schema.end(), v);
      out_positions[tag].push_back(
          static_cast<size_t>(it - out.schema.begin()));
    }
  }

  mapreduce::Reducer reducer = [&](const std::vector<uint32_t>& /*key*/,
                                   const std::vector<Record>& group,
                                   std::vector<Record>* emit) {
    // Split the group by tag.
    std::vector<std::vector<const Record*>> by_tag(schemas.size());
    for (const Record& r : group) by_tag[r.value[0]].push_back(&r);
    for (const auto& records : by_tag) {
      if (records.empty()) return;  // Inner join: some input has no rows.
    }
    // Cross product across tags with compatibility checks on all shared
    // variables (solution-mapping compatibility, Sec. 2.1).
    std::vector<std::vector<uint32_t>> partials;
    partials.emplace_back(out_width, engine::kNullTermId);
    for (size_t tag = 0; tag < schemas.size(); ++tag) {
      std::vector<std::vector<uint32_t>> next;
      for (const auto& partial : partials) {
        for (const Record* r : by_tag[tag]) {
          bool compatible = true;
          std::vector<uint32_t> merged = partial;
          for (size_t c = 0; c < schemas[tag].size(); ++c) {
            uint32_t value = r->value[1 + c];
            uint32_t& slot = merged[out_positions[tag][c]];
            if (slot != engine::kNullTermId && slot != value) {
              compatible = false;
              break;
            }
            slot = value;
          }
          if (compatible) next.push_back(std::move(merged));
        }
      }
      partials = std::move(next);
      if (partials.empty()) return;
    }
    for (auto& bindings : partials) {
      Record r;
      r.value = std::move(bindings);
      emit->push_back(std::move(r));
    }
  };

  mapreduce::JobConfig config;
  config.work_dir = options.work_dir;
  config.num_reducers = options.num_reducers;
  config.max_records_in_memory = options.max_records_in_memory;
  S2RDF_ASSIGN_OR_RETURN(
      mapreduce::JobMetrics metrics,
      mapreduce::RunJob(config, tagged_paths, mapper, reducer, out_path));
  *total_metrics += metrics;
  out.rows = metrics.reduce_output_records;
  for (const std::string& path : tagged_paths) {
    S2RDF_RETURN_IF_ERROR(RemoveFile(path));
  }
  return out;
}

StatusOr<engine::Table> RelationToTable(const Relation& rel) {
  S2RDF_ASSIGN_OR_RETURN(std::vector<Record> records,
                         mapreduce::ReadRecordFile(rel.path));
  engine::Table table(rel.schema);
  table.Reserve(records.size());
  for (const Record& r : records) table.AppendRow(r.value);
  return table;
}

}  // namespace

StatusOr<MrQueryResult> MrSparqlEngine::ExecuteBgp(
    const std::vector<TriplePattern>& bgp) const {
  auto start = MonotonicNow();
  if (bgp.empty()) return InvalidArgumentError("empty BGP");
  MrQueryResult result;

  // Materialize every pattern's relation (the extraction scans).
  std::vector<Relation> rels;
  for (size_t i = 0; i < bgp.size(); ++i) {
    S2RDF_ASSIGN_OR_RETURN(
        Relation rel,
        MaterializePattern(graph_, bgp[i],
                           options_.work_dir + "/tp" + std::to_string(i) +
                               ".rec"));
    rels.push_back(std::move(rel));
  }

  Relation current = rels[0];
  size_t pos = 1;
  uint64_t job_seq = 0;
  while (pos < rels.size()) {
    std::vector<Relation> group = {current};
    std::vector<std::string> join_vars =
        SharedVars(current.schema, rels[pos].schema);
    group.push_back(rels[pos]);
    ++pos;
    if (options_.planner == MrPlanner::kMultiJoin && !join_vars.empty()) {
      // PigSPARQL multi-join: pull in consecutive patterns that join on
      // the same single variable, processing them in one n-ary job.
      const std::string& v = join_vars[0];
      join_vars = {v};
      while (pos < rels.size() &&
             std::find(rels[pos].schema.begin(), rels[pos].schema.end(),
                       v) != rels[pos].schema.end()) {
        group.push_back(rels[pos]);
        ++pos;
      }
    }
    std::string out_path = options_.work_dir + "/join" +
                           std::to_string(job_seq) + ".rec";
    S2RDF_ASSIGN_OR_RETURN(
        current, JoinJob(options_, group, join_vars, out_path, job_seq,
                         &result.metrics));
    ++job_seq;
  }

  // SHARD counts one job per clause (extraction included); PigSPARQL's
  // multi-join runs one job per join group.
  result.jobs = options_.planner == MrPlanner::kClauseIteration
                    ? bgp.size()
                    : std::max<uint64_t>(job_seq, 1);

  S2RDF_ASSIGN_OR_RETURN(result.table, RelationToTable(current));
  result.wall_ms = MillisSince(start);
  return result;
}

StatusOr<MrQueryResult> MrSparqlEngine::Execute(
    std::string_view sparql) const {
  auto start = MonotonicNow();
  S2RDF_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  if (!query.aggregates.empty() || !query.group_by.empty() ||
      !query.where.subqueries.empty() || !query.where.values.empty() ||
      query.form != sparql::QueryForm::kSelect) {
    return UnimplementedError(
        "baseline engines do not support SPARQL 1.1 aggregates or "
        "subqueries");
  }
  if (!query.where.optionals.empty() || !query.where.unions.empty()) {
    return UnimplementedError(
        "MapReduce baselines support plain BGP queries only");
  }
  S2RDF_ASSIGN_OR_RETURN(MrQueryResult result,
                         ExecuteBgp(query.where.triples));
  engine::Table table = std::move(result.table);
  const rdf::Dictionary& dict = graph_.dictionary();
  for (const engine::ExprPtr& filter : query.where.filters) {
    table = engine::Filter(table, *filter, dict, nullptr);
  }
  std::vector<std::string> projection =
      query.select_all ? query.where.AllVariables() : query.projection;
  table = engine::Project(table, projection);
  if (query.distinct) table = engine::Distinct(table, nullptr);
  if (!query.order_by.empty()) {
    table = engine::OrderBy(table, query.order_by, dict);
  }
  if (query.offset > 0 || query.limit != engine::kNoLimit) {
    table = engine::Slice(table, query.offset, query.limit);
  }
  result.table = std::move(table);
  result.wall_ms = MillisSince(start);
  return result;
}

}  // namespace s2rdf::baselines
