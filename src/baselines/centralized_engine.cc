#include "baselines/centralized_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/clock.h"
#include "engine/operators.h"
#include "sparql/parser.h"

namespace s2rdf::baselines {

namespace {

using rdf::TermId;
using sparql::PatternTerm;
using sparql::TriplePattern;

// Resolves a pattern position against the current variable bindings.
std::optional<TermId> Resolve(
    const PatternTerm& term, const rdf::Dictionary& dict,
    const std::unordered_map<std::string, int>& var_cols,
    const engine::Table& bindings, size_t row) {
  if (!term.is_variable()) {
    std::optional<TermId> id = dict.Find(term.value);
    // An absent constant matches nothing; the caller checks this via a
    // sentinel that can never appear in the data.
    return id.has_value() ? id : std::optional<TermId>(engine::kNullTermId);
  }
  auto it = var_cols.find(term.value);
  if (it == var_cols.end()) return std::nullopt;
  return bindings.At(row, static_cast<size_t>(it->second));
}

}  // namespace

StatusOr<CentralizedResult> CentralizedBgpEngine::ExecuteBgp(
    const std::vector<TriplePattern>& bgp) const {
  auto start = MonotonicNow();
  if (bgp.empty()) return InvalidArgumentError("empty BGP");
  CentralizedResult result;

  // Greedy ordering: repeatedly pick the remaining pattern with the most
  // positions bound (constants + already-bound variables), breaking ties
  // by static index cardinality — the classic index-nested-loop planner.
  std::vector<size_t> remaining(bgp.size());
  for (size_t i = 0; i < bgp.size(); ++i) remaining[i] = i;
  std::vector<size_t> order;
  std::vector<std::string> bound_vars;
  auto static_count = [&](const TriplePattern& tp) {
    IndexPattern pattern;
    if (!tp.subject.is_variable()) {
      pattern.subject = dict_.Find(tp.subject.value).value_or(
          engine::kNullTermId);
    }
    if (!tp.predicate.is_variable()) {
      pattern.predicate = dict_.Find(tp.predicate.value).value_or(
          engine::kNullTermId);
    }
    if (!tp.object.is_variable()) {
      pattern.object = dict_.Find(tp.object.value).value_or(
          engine::kNullTermId);
    }
    return store_.CountMatches(pattern);
  };
  while (!remaining.empty()) {
    size_t best_pos = 0;
    int best_bound = -1;
    uint64_t best_count = ~0ull;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const TriplePattern& tp = bgp[remaining[i]];
      int bound = 0;
      for (const PatternTerm* term :
           {&tp.subject, &tp.predicate, &tp.object}) {
        if (!term->is_variable() ||
            std::find(bound_vars.begin(), bound_vars.end(), term->value) !=
                bound_vars.end()) {
          ++bound;
        }
      }
      uint64_t count = static_count(tp);
      if (bound > best_bound || (bound == best_bound && count < best_count)) {
        best_pos = i;
        best_bound = bound;
        best_count = count;
      }
    }
    size_t chosen = remaining[best_pos];
    order.push_back(chosen);
    remaining.erase(remaining.begin() + static_cast<long>(best_pos));
    for (const std::string& v : bgp[chosen].Variables()) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
          bound_vars.end()) {
        bound_vars.push_back(v);
      }
    }
  }

  // Index nested loop: extend the binding table one pattern at a time.
  engine::Table bindings(std::vector<std::string>{});
  bindings.AppendRow(std::vector<TermId>{});  // One empty binding.
  std::unordered_map<std::string, int> var_cols;

  for (size_t tp_index : order) {
    const TriplePattern& tp = bgp[tp_index];
    // New output schema: existing columns + this pattern's new variables.
    std::vector<std::string> new_names = bindings.column_names();
    std::vector<std::pair<const PatternTerm*, TermId rdf::Triple::*>>
        positions = {{&tp.subject, &rdf::Triple::subject},
                     {&tp.predicate, &rdf::Triple::predicate},
                     {&tp.object, &rdf::Triple::object}};
    std::vector<std::pair<std::string, TermId rdf::Triple::*>> new_vars;
    for (const auto& [term, member] : positions) {
      if (term->is_variable() && !var_cols.contains(term->value)) {
        bool already = false;
        for (const auto& [name, m] : new_vars) {
          if (name == term->value) already = true;
        }
        if (!already) {
          new_vars.emplace_back(term->value, member);
          new_names.push_back(term->value);
        }
      }
    }
    engine::Table next(new_names);

    for (size_t row = 0; row < bindings.NumRows(); ++row) {
      IndexPattern pattern;
      bool impossible = false;
      auto fill = [&](const PatternTerm& term,
                      std::optional<TermId>* slot) {
        std::optional<TermId> id =
            Resolve(term, dict_, var_cols, bindings, row);
        if (id.has_value()) {
          if (*id == engine::kNullTermId && !term.is_variable()) {
            impossible = true;
          }
          *slot = id;
        }
      };
      fill(tp.subject, &pattern.subject);
      fill(tp.predicate, &pattern.predicate);
      fill(tp.object, &pattern.object);
      if (impossible) continue;

      ++result.index_lookups;
      std::span<const rdf::Triple> matches = store_.Scan(pattern);
      result.scanned_triples += matches.size();
      for (const rdf::Triple& t : matches) {
        // Repeated variables within the pattern must agree.
        bool consistent = true;
        std::unordered_map<std::string, TermId> locals;
        for (const auto& [term, member] : positions) {
          if (!term->is_variable()) continue;
          TermId value = t.*member;
          auto it = locals.find(term->value);
          if (it != locals.end() && it->second != value) {
            consistent = false;
            break;
          }
          locals[term->value] = value;
        }
        if (!consistent) continue;
        std::vector<TermId> out_row;
        out_row.reserve(new_names.size());
        for (size_t c = 0; c < bindings.NumColumns(); ++c) {
          out_row.push_back(bindings.At(row, c));
        }
        for (const auto& [name, member] : new_vars) {
          out_row.push_back(locals[name]);
        }
        next.AppendRow(out_row);
      }
    }
    bindings = std::move(next);
    for (size_t c = 0; c < bindings.NumColumns(); ++c) {
      var_cols[bindings.column_names()[c]] = static_cast<int>(c);
    }
  }

  result.table = std::move(bindings);
  result.wall_ms = MillisSince(start);
  return result;
}

StatusOr<CentralizedResult> CentralizedBgpEngine::Execute(
    std::string_view sparql) const {
  auto start = MonotonicNow();
  S2RDF_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  if (!query.aggregates.empty() || !query.group_by.empty() ||
      !query.where.subqueries.empty() || !query.where.values.empty() ||
      query.form != sparql::QueryForm::kSelect) {
    return UnimplementedError(
        "baseline engines do not support SPARQL 1.1 aggregates or "
        "subqueries");
  }
  if (!query.where.optionals.empty() || !query.where.unions.empty()) {
    return UnimplementedError(
        "centralized baseline supports plain BGP queries only");
  }
  S2RDF_ASSIGN_OR_RETURN(CentralizedResult result,
                         ExecuteBgp(query.where.triples));
  engine::Table table = std::move(result.table);
  for (const engine::ExprPtr& filter : query.where.filters) {
    table = engine::Filter(table, *filter, dict_, nullptr);
  }
  std::vector<std::string> projection =
      query.select_all ? query.where.AllVariables() : query.projection;
  table = engine::Project(table, projection);
  if (query.distinct) table = engine::Distinct(table, nullptr);
  if (!query.order_by.empty()) {
    table = engine::OrderBy(table, query.order_by, dict_);
  }
  if (query.offset > 0 || query.limit != engine::kNoLimit) {
    table = engine::Slice(table, query.offset, query.limit);
  }
  result.table = std::move(table);
  result.wall_ms = MillisSince(start);
  return result;
}

}  // namespace s2rdf::baselines
