#ifndef S2RDF_BASELINES_MR_SPARQL_ENGINE_H_
#define S2RDF_BASELINES_MR_SPARQL_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/table.h"
#include "mapreduce/job.h"
#include "rdf/graph.h"
#include "sparql/ast.h"

// MapReduce-based SPARQL baselines:
//
//   SHARD (Rohloff & Schantz): Clause-Iteration — one MapReduce job per
//   triple pattern, building a left-deep join over the running
//   intermediate solution set.
//
//   PigSPARQL (Schätzle et al.): the same data flow but with the
//   multi-join optimization — consecutive patterns joining on the same
//   variable are processed in a single n-ary MapReduce job.
//
// Both execute through the mini MapReduce runtime (real map/shuffle/
// sort/reduce disk round-trips). Cluster job-launch latency is modeled:
// harnesses add `jobs * job_overhead_ms` to the measured wall-clock.

namespace s2rdf::baselines {

enum class MrPlanner {
  kClauseIteration,  // SHARD: one job per triple pattern.
  kMultiJoin,        // PigSPARQL: one job per join variable group.
};

struct MrEngineOptions {
  // Scratch directory for record/shuffle files; must exist.
  std::string work_dir;
  MrPlanner planner = MrPlanner::kClauseIteration;
  int num_reducers = 4;
  uint64_t max_records_in_memory = 1u << 20;
};

struct MrQueryResult {
  engine::Table table;  // Columns = variables in first-appearance order.
  uint64_t jobs = 0;
  mapreduce::JobMetrics metrics;
  double wall_ms = 0.0;
};

class MrSparqlEngine {
 public:
  // `graph` must outlive the engine.
  MrSparqlEngine(const rdf::Graph* graph, MrEngineOptions options)
      : graph_(*graph), options_(std::move(options)) {}

  // Evaluates a basic graph pattern through MapReduce jobs.
  StatusOr<MrQueryResult> ExecuteBgp(
      const std::vector<sparql::TriplePattern>& bgp) const;

  // Parses and evaluates a SELECT query over a plain BGP. FILTER and
  // solution modifiers are applied in the driver after the final job
  // (as both original systems do for final projections).
  StatusOr<MrQueryResult> Execute(std::string_view sparql) const;

 private:
  const rdf::Graph& graph_;
  MrEngineOptions options_;
};

}  // namespace s2rdf::baselines

#endif  // S2RDF_BASELINES_MR_SPARQL_ENGINE_H_
