#include "server/worker_pool.h"

#include <utility>

#include "common/mutex.h"

namespace s2rdf::server {

WorkerPool::WorkerPool(int num_workers, size_t queue_capacity)
    : num_workers_(num_workers > 0 ? num_workers : 1),
      queue_capacity_(queue_capacity) {}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start() {
  {
    MutexLock lock(&mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    const MonotonicTime enqueued = MonotonicNow();
    MutexLock lock(&mu_);
    if (!started_ || stopping_ || queue_.size() >= queue_capacity_) {
      return false;
    }
    queue_.push_back(QueuedTask{std::move(task), enqueued});
  }
  cv_.NotifyOne();
  return true;
}

void WorkerPool::AttachMetrics(MetricsRegistry* registry) {
  registry->AddGauge(
      "s2rdf_workers_busy", "Endpoint workers currently running a task.",
      [this] { return static_cast<uint64_t>(BusyWorkers()); });
  Histogram* hist = registry->AddHistogram(
      "s2rdf_admission_wait_seconds",
      "Time admitted connections wait in the bounded queue before a "
      "worker picks them up.",
      LogBuckets(1e-5, 4.0, 12));
  admission_wait_hist_.store(hist, std::memory_order_release);
}

void WorkerPool::Stop() {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t WorkerPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain queued tasks even while stopping: clients whose requests
      // were admitted still get responses.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (Histogram* hist =
            admission_wait_hist_.load(std::memory_order_acquire)) {
      hist->Observe(SecondsSince(task.enqueued));
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task.fn();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace s2rdf::server
