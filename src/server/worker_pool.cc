#include "server/worker_pool.h"

#include <utility>

namespace s2rdf::server {

WorkerPool::WorkerPool(int num_workers, size_t queue_capacity)
    : num_workers_(num_workers > 0 ? num_workers : 1),
      queue_capacity_(queue_capacity) {}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_ || queue_.size() >= queue_capacity_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain queued tasks even while stopping: clients whose requests
      // were admitted still get responses.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace s2rdf::server
