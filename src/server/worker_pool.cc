#include "server/worker_pool.h"

#include <utility>

#include "common/mutex.h"

namespace s2rdf::server {

WorkerPool::WorkerPool(int num_workers, size_t queue_capacity)
    : num_workers_(num_workers > 0 ? num_workers : 1),
      queue_capacity_(queue_capacity) {}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start() {
  {
    MutexLock lock(&mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  workers_.reserve(static_cast<size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_ || queue_.size() >= queue_capacity_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void WorkerPool::Stop() {
  {
    MutexLock lock(&mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t WorkerPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain queued tasks even while stopping: clients whose requests
      // were admitted still get responses.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace s2rdf::server
