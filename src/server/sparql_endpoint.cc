#include "server/sparql_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "sparql/results_io.h"

namespace s2rdf::server {

namespace {

// Picks a result serialization from the Accept header.
enum class ResultFormat { kJson, kXml, kCsv, kTsv };

ResultFormat NegotiateFormat(const std::string& accept) {
  if (accept.find("sparql-results+xml") != std::string::npos ||
      accept.find("application/xml") != std::string::npos) {
    return ResultFormat::kXml;
  }
  if (accept.find("text/csv") != std::string::npos) {
    return ResultFormat::kCsv;
  }
  if (accept.find("text/tab-separated-values") != std::string::npos) {
    return ResultFormat::kTsv;
  }
  return ResultFormat::kJson;
}

const char* ContentTypeFor(ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson:
      return "application/sparql-results+json";
    case ResultFormat::kXml:
      return "application/sparql-results+xml";
    case ResultFormat::kCsv:
      return "text/csv; charset=utf-8";
    case ResultFormat::kTsv:
      return "text/tab-separated-values; charset=utf-8";
  }
  return "text/plain";
}

}  // namespace

HttpResponse SparqlEndpoint::Handle(const HttpRequest& request) {
  HttpResponse response;
  if (request.path == "/" && request.method == "GET") {
    response.content_type = "text/html; charset=utf-8";
    response.body =
        "<html><body><h1>S2RDF SPARQL endpoint</h1>"
        "<p>POST or GET /sparql with a <code>query</code> parameter.</p>"
        "<p>Tables: " +
        std::to_string(db_.catalog().NumMaterializedTables()) +
        ", tuples: " + std::to_string(db_.catalog().TotalTuples()) +
        "</p></body></html>";
    return response;
  }
  if (request.path != "/sparql") {
    response.status_code = 404;
    response.body = "not found\n";
    return response;
  }

  std::string query_text;
  if (request.method == "GET") {
    auto params = ParseQueryString(request.query_string);
    query_text = params["query"];
  } else if (request.method == "POST") {
    std::string content_type = request.Header("content-type");
    if (content_type.find("application/sparql-query") != std::string::npos) {
      query_text = request.body;
    } else if (content_type.find("application/x-www-form-urlencoded") !=
                   std::string::npos ||
               content_type.empty()) {
      auto params = ParseQueryString(request.body);
      query_text = params["query"];
    } else {
      response.status_code = 415;
      response.body = "unsupported content type: " + content_type + "\n";
      return response;
    }
  } else {
    response.status_code = 405;
    response.body = "use GET or POST\n";
    return response;
  }

  if (query_text.empty()) {
    response.status_code = 400;
    response.body = "missing 'query' parameter\n";
    return response;
  }

  auto result = db_.Execute(query_text);
  if (!result.ok()) {
    response.status_code =
        result.status().code() == StatusCode::kInvalidArgument ? 400 : 500;
    response.body = result.status().ToString() + "\n";
    return response;
  }

  ResultFormat format = NegotiateFormat(request.Header("accept"));
  response.content_type = ContentTypeFor(format);
  const rdf::Dictionary& dict = db_.graph().dictionary();
  if (result->is_graph) {
    // CONSTRUCT/DESCRIBE: the result is a graph, not solutions.
    response.content_type = "application/n-triples; charset=utf-8";
    response.body = result->graph_ntriples;
    return response;
  }
  if (result->is_ask) {
    switch (format) {
      case ResultFormat::kXml:
        response.body = sparql::AskToXml(result->ask_result);
        break;
      default:
        response.content_type = ContentTypeFor(ResultFormat::kJson);
        response.body = sparql::AskToJson(result->ask_result);
    }
    return response;
  }
  switch (format) {
    case ResultFormat::kJson:
      response.body = sparql::ResultsToJson(result->table, dict);
      break;
    case ResultFormat::kXml:
      response.body = sparql::ResultsToXml(result->table, dict);
      break;
    case ResultFormat::kCsv:
      response.body = sparql::ResultsToCsv(result->table, dict);
      break;
    case ResultFormat::kTsv:
      response.body = sparql::ResultsToTsv(result->table, dict);
      break;
  }
  return response;
}

StatusOr<int> SparqlEndpoint::Start(int port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return IoError("socket() failed");
  int reuse = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return IoError("bind() failed on port " + std::to_string(port));
  }
  if (listen(listen_fd_, 16) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  int bound_port = ntohs(addr.sin_port);

  running_ = true;
  server_thread_ = std::thread([this] { ServeLoop(); });
  return bound_port;
}

void SparqlEndpoint::ServeLoop() {
  while (running_) {
    int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_) break;
      continue;
    }
    // Read the head, then honor Content-Length.
    std::string raw;
    char buf[4096];
    size_t content_length = 0;
    size_t head_end = std::string::npos;
    while (true) {
      ssize_t n = read(client, buf, sizeof(buf));
      if (n <= 0) break;
      raw.append(buf, static_cast<size_t>(n));
      if (head_end == std::string::npos) {
        head_end = raw.find("\r\n\r\n");
        if (head_end != std::string::npos) {
          auto parsed = ParseHttpRequest(raw.substr(0, head_end + 4));
          if (parsed.ok()) {
            std::string cl = parsed->Header("content-length");
            content_length = cl.empty()
                                 ? 0
                                 : static_cast<size_t>(std::atoll(cl.c_str()));
          }
        }
      }
      if (head_end != std::string::npos &&
          raw.size() >= head_end + 4 + content_length) {
        break;
      }
    }
    HttpResponse response;
    auto request = ParseHttpRequest(raw);
    if (!request.ok()) {
      response.status_code = 400;
      response.body = request.status().ToString() + "\n";
    } else {
      response = Handle(*request);
    }
    std::string wire = response.Serialize();
    size_t written = 0;
    while (written < wire.size()) {
      ssize_t n = write(client, wire.data() + written,
                        wire.size() - written);
      if (n <= 0) break;
      written += static_cast<size_t>(n);
    }
    close(client);
  }
}

void SparqlEndpoint::Stop() {
  if (!running_) return;
  running_ = false;
  // Unblock accept() by shutting the listener down.
  shutdown(listen_fd_, SHUT_RDWR);
  close(listen_fd_);
  listen_fd_ = -1;
  if (server_thread_.joinable()) server_thread_.join();
}

SparqlEndpoint::~SparqlEndpoint() { Stop(); }

}  // namespace s2rdf::server
