#include "server/sparql_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "common/task_pool.h"
#include "sparql/results_io.h"

namespace s2rdf::server {

namespace {

// Picks a result serialization from the Accept header.
enum class ResultFormat { kJson, kXml, kCsv, kTsv };

ResultFormat NegotiateFormat(const std::string& accept) {
  if (accept.find("sparql-results+xml") != std::string::npos ||
      accept.find("application/xml") != std::string::npos) {
    return ResultFormat::kXml;
  }
  if (accept.find("text/csv") != std::string::npos) {
    return ResultFormat::kCsv;
  }
  if (accept.find("text/tab-separated-values") != std::string::npos) {
    return ResultFormat::kTsv;
  }
  return ResultFormat::kJson;
}

const char* ContentTypeFor(ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson:
      return "application/sparql-results+json";
    case ResultFormat::kXml:
      return "application/sparql-results+xml";
    case ResultFormat::kCsv:
      return "text/csv; charset=utf-8";
    case ResultFormat::kTsv:
      return "text/tab-separated-values; charset=utf-8";
  }
  return "text/plain";
}

// The single Status -> HTTP mapping for the endpoint.
int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

// SPARQL Protocol error responses carry a human-readable body
// (text/plain is explicitly allowed by the spec).
HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status_code = HttpStatusForCode(status.code());
  response.content_type = "text/plain; charset=utf-8";
  response.body = status.ToString() + "\n";
  return response;
}

// Parses a non-negative integer request parameter; false on garbage.
bool ParseParam(const std::map<std::string, std::string>& params,
                const std::string& name, uint64_t* out, bool* present) {
  *present = false;
  auto it = params.find(name);
  if (it == params.end()) return true;
  long long value = 0;
  if (!ParseInt64(it->second, &value) || value < 0) return false;
  *out = static_cast<uint64_t>(value);
  *present = true;
  return true;
}

}  // namespace

HttpResponse SparqlEndpoint::Handle(const HttpRequest& request) {
  HttpResponse response;
  if (request.path == "/" && request.method == "GET") {
    response.content_type = "text/html; charset=utf-8";
    response.body =
        "<html><body><h1>S2RDF SPARQL endpoint</h1>"
        "<p>POST or GET /sparql with a <code>query</code> parameter "
        "(optional <code>timeout</code> ms and <code>limit</code> "
        "rows).</p>"
        "<p>Tables: " +
        std::to_string(db_.catalog().NumMaterializedTables()) +
        ", tuples: " + std::to_string(db_.catalog().TotalTuples()) +
        "</p></body></html>";
    return response;
  }
  if (request.path == "/health" && request.method == "GET") {
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics" && request.method == "GET") {
    EndpointStats stats = Stats();
    std::string out;
    auto counter = [&out](const char* name, uint64_t value) {
      out += std::string(name) + " " + std::to_string(value) + "\n";
    };
    counter("s2rdf_queries_total", stats.queries_total);
    counter("s2rdf_query_errors_total", stats.query_errors_total);
    counter("s2rdf_rejected_total", stats.rejected_total);
    counter("s2rdf_queries_in_flight", stats.in_flight);
    counter("s2rdf_queue_depth", stats.queue_depth);
    counter("s2rdf_exec_input_tuples_total", stats.cumulative.input_tuples);
    counter("s2rdf_exec_intermediate_tuples_total",
            stats.cumulative.intermediate_tuples);
    counter("s2rdf_exec_join_comparisons_total",
            stats.cumulative.join_comparisons);
    counter("s2rdf_exec_shuffled_tuples_total",
            stats.cumulative.shuffled_tuples);
    counter("s2rdf_exec_output_tuples_total", stats.cumulative.output_tuples);
    counter("s2rdf_catalog_materialized_tables",
            db_.catalog().NumMaterializedTables());
    counter("s2rdf_catalog_cached_bytes", db_.catalog().CachedBytes());
    counter("s2rdf_lazy_extvp_pairs_computed", db_.lazy_pairs_computed());
    counter("s2rdf_storage_corruptions_detected",
            db_.catalog().corruptions_detected());
    counter("s2rdf_queries_degraded", db_.catalog().queries_degraded());
    counter("s2rdf_recovery_quarantined_tables",
            db_.catalog().quarantined_tables());
    // Helper threads of the process-wide morsel pool. Fixed at first
    // use and shared by every in-flight query, so total execution
    // threads stay at num_workers + this, independent of load.
    counter("s2rdf_task_pool_threads",
            static_cast<uint64_t>(TaskPool::Shared()->num_threads()));
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = out;
    return response;
  }
  if (request.path != "/sparql") {
    return ErrorResponse(NotFoundError("no such resource: " + request.path));
  }

  // Request parameters come from the URL query string (always) plus, for
  // form POSTs, the form body.
  std::map<std::string, std::string> params =
      ParseQueryString(request.query_string);
  std::string query_text = params["query"];
  if (request.method == "POST") {
    std::string content_type = request.Header("content-type");
    if (content_type.find("application/sparql-query") != std::string::npos) {
      query_text = request.body;
    } else if (content_type.find("application/x-www-form-urlencoded") !=
                   std::string::npos ||
               content_type.empty()) {
      auto form = ParseQueryString(request.body);
      for (auto& [key, value] : form) params[key] = std::move(value);
      query_text = params["query"];
    } else {
      response.status_code = 415;
      response.body = "unsupported content type: " + content_type + "\n";
      return response;
    }
  } else if (request.method != "GET") {
    response.status_code = 405;
    response.body = "use GET or POST\n";
    return response;
  }

  if (query_text.empty()) {
    return ErrorResponse(
        InvalidArgumentError("missing 'query' parameter"));
  }

  core::QueryRequest query_request;
  query_request.query = query_text;
  query_request.options.timeout_ms = options_.default_timeout_ms;
  bool present = false;
  uint64_t value = 0;
  if (!ParseParam(params, "timeout", &value, &present)) {
    return ErrorResponse(
        InvalidArgumentError("'timeout' must be a non-negative integer"));
  }
  if (present) query_request.options.timeout_ms = value;
  if (options_.max_timeout_ms > 0 &&
      (query_request.options.timeout_ms == 0 ||
       query_request.options.timeout_ms > options_.max_timeout_ms)) {
    query_request.options.timeout_ms = options_.max_timeout_ms;
  }
  if (!ParseParam(params, "limit", &value, &present)) {
    return ErrorResponse(
        InvalidArgumentError("'limit' must be a non-negative integer"));
  }
  if (present) query_request.options.max_result_rows = value;

  queries_total_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto result = db_.Execute(query_request);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (!result.ok()) {
    query_errors_total_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(result.status());
  }
  {
    MutexLock lock(&metrics_mu_);
    cumulative_ += result->metrics;
  }

  ResultFormat format = NegotiateFormat(request.Header("accept"));
  response.content_type = ContentTypeFor(format);
  const rdf::Dictionary& dict = db_.graph().dictionary();
  if (result->is_graph) {
    // CONSTRUCT/DESCRIBE: the result is a graph, not solutions.
    response.content_type = "application/n-triples; charset=utf-8";
    response.body = result->graph_ntriples;
    return response;
  }
  if (result->is_ask) {
    switch (format) {
      case ResultFormat::kXml:
        response.body = sparql::AskToXml(result->ask_result);
        break;
      default:
        response.content_type = ContentTypeFor(ResultFormat::kJson);
        response.body = sparql::AskToJson(result->ask_result);
    }
    return response;
  }
  switch (format) {
    case ResultFormat::kJson:
      response.body = sparql::ResultsToJson(result->table, dict);
      break;
    case ResultFormat::kXml:
      response.body = sparql::ResultsToXml(result->table, dict);
      break;
    case ResultFormat::kCsv:
      response.body = sparql::ResultsToCsv(result->table, dict);
      break;
    case ResultFormat::kTsv:
      response.body = sparql::ResultsToTsv(result->table, dict);
      break;
  }
  return response;
}

StatusOr<int> SparqlEndpoint::Start(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError("socket() failed");
  int reuse = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return IoError("bind() failed on port " + std::to_string(port));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  int bound_port = ntohs(addr.sin_port);
  listen_fd_.store(fd);

  pool_ = std::make_unique<WorkerPool>(options_.num_workers,
                                       options_.queue_capacity);
  pool_->Start();
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound_port;
}

std::string SparqlEndpoint::ReadRequest(int client) {
  // Read the head, then honor Content-Length.
  std::string raw;
  char buf[4096];
  size_t content_length = 0;
  size_t head_end = std::string::npos;
  while (true) {
    ssize_t n = read(client, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = raw.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        auto parsed = ParseHttpRequest(raw.substr(0, head_end + 4));
        if (parsed.ok()) {
          std::string cl = parsed->Header("content-length");
          content_length = cl.empty()
                               ? 0
                               : static_cast<size_t>(std::atoll(cl.c_str()));
        }
      }
    }
    if (head_end != std::string::npos &&
        raw.size() >= head_end + 4 + content_length) {
      break;
    }
  }
  return raw;
}

void SparqlEndpoint::WriteResponse(int client, const HttpResponse& response) {
  std::string wire = response.Serialize();
  size_t written = 0;
  while (written < wire.size()) {
    ssize_t n = write(client, wire.data() + written, wire.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

void SparqlEndpoint::HandleConnection(int client) {
  if (options_.worker_hook) options_.worker_hook();
  std::string raw = ReadRequest(client);
  HttpResponse response;
  auto request = ParseHttpRequest(raw);
  if (!request.ok()) {
    response = ErrorResponse(request.status());
  } else {
    response = Handle(*request);
  }
  WriteResponse(client, response);
  close(client);
}

void SparqlEndpoint::AcceptLoop() {
  while (running_) {
    int client = accept(listen_fd_.load(), nullptr, nullptr);
    if (client < 0) {
      if (!running_) break;
      continue;
    }
    bool admitted = pool_->Submit([this, client] { HandleConnection(client); });
    if (!admitted) {
      // Admission control: every worker busy and the queue full. Read
      // the request before answering so the close doesn't RST the
      // client's receive buffer, then reject with 503.
      rejected_total_.fetch_add(1, std::memory_order_relaxed);
      (void)ReadRequest(client);
      WriteResponse(client,
                    ErrorResponse(ResourceExhaustedError(
                        "server overloaded: connection queue is full")));
      close(client);
    }
  }
}

EndpointStats SparqlEndpoint::Stats() const {
  EndpointStats stats;
  stats.queries_total = queries_total_.load(std::memory_order_relaxed);
  stats.query_errors_total =
      query_errors_total_.load(std::memory_order_relaxed);
  stats.rejected_total = rejected_total_.load(std::memory_order_relaxed);
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.queue_depth = pool_ != nullptr ? pool_->QueueDepth() : 0;
  {
    MutexLock lock(&metrics_mu_);
    stats.cumulative = cumulative_;
  }
  return stats;
}

void SparqlEndpoint::Stop() {
  if (!running_) return;
  running_ = false;
  // Unblock accept() by shutting the listener down.
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain admitted connections, then join the workers.
  if (pool_ != nullptr) pool_->Stop();
}

SparqlEndpoint::~SparqlEndpoint() { Stop(); }

}  // namespace s2rdf::server
