#include "server/sparql_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/build_info.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/task_pool.h"
#include "core/ingest.h"
#include "engine/profile.h"
#include "sparql/results_io.h"

namespace s2rdf::server {

namespace {

// Query text is truncated to this many characters in the in-flight map,
// the ring buffer and log lines (display only; execution sees it all).
constexpr size_t kQueryDisplayChars = 160;

// Completed queries kept for /debug/queries.
constexpr size_t kRecentQueryCapacity = 64;

// Bytes a shuffled tuple is accounted as in s2rdf_shuffle_bytes: one
// 64-bit term id per column, three columns as the working-set estimate
// (the repartition model counts tuples, not encoded widths).
constexpr uint64_t kShuffleBytesPerTuple = 24;

std::string TruncateForDisplay(const std::string& text) {
  if (text.size() <= kQueryDisplayChars) return text;
  return text.substr(0, kQueryDisplayChars) + "...";
}

// Picks a result serialization from the Accept header.
enum class ResultFormat { kJson, kXml, kCsv, kTsv };

ResultFormat NegotiateFormat(const std::string& accept) {
  if (accept.find("sparql-results+xml") != std::string::npos ||
      accept.find("application/xml") != std::string::npos) {
    return ResultFormat::kXml;
  }
  if (accept.find("text/csv") != std::string::npos) {
    return ResultFormat::kCsv;
  }
  if (accept.find("text/tab-separated-values") != std::string::npos) {
    return ResultFormat::kTsv;
  }
  return ResultFormat::kJson;
}

const char* ContentTypeFor(ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson:
      return "application/sparql-results+json";
    case ResultFormat::kXml:
      return "application/sparql-results+xml";
    case ResultFormat::kCsv:
      return "text/csv; charset=utf-8";
    case ResultFormat::kTsv:
      return "text/tab-separated-values; charset=utf-8";
  }
  return "text/plain";
}

// The single Status -> HTTP mapping for the endpoint.
int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

// SPARQL Protocol error responses carry a human-readable body
// (text/plain is explicitly allowed by the spec).
HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status_code = HttpStatusForCode(status.code());
  response.content_type = "text/plain; charset=utf-8";
  response.body = status.ToString() + "\n";
  return response;
}

// Parses a non-negative integer request parameter; false on garbage.
bool ParseParam(const std::map<std::string, std::string>& params,
                const std::string& name, uint64_t* out, bool* present) {
  *present = false;
  auto it = params.find(name);
  if (it == params.end()) return true;
  long long value = 0;
  if (!ParseInt64(it->second, &value) || value < 0) return false;
  *out = static_cast<uint64_t>(value);
  *present = true;
  return true;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string FormatHex64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Instance salt for trace ids: the monotonic clock reading at
// construction, dispersed through splitmix64. Unique enough that two
// endpoints (or two runs) never mint colliding ids, while staying off
// the banned nondeterminism primitives (clock seam, seeded generator).
uint64_t MakeTraceSalt() {
  uint64_t seed = static_cast<uint64_t>(
      MonotonicNow().time_since_epoch().count());
  return SplitMix64(seed).Next();
}

}  // namespace

SparqlEndpoint::SparqlEndpoint(core::S2Rdf* db, EndpointOptions options)
    : db_(*db),
      options_(std::move(options)),
      slow_query_limiter_(
          static_cast<double>(options_.slow_query_log_interval_ms) / 1000.0),
      started_at_(MonotonicNow()),
      trace_salt_(MakeTraceSalt()) {
  RegisterMetrics();
}

void SparqlEndpoint::RegisterMetrics() {
  queries_total_ = registry_.AddCounter(
      "s2rdf_queries_total", "Queries admitted to execution.");
  query_errors_total_ = registry_.AddCounter(
      "s2rdf_query_errors_total",
      "Admitted queries that returned an error (legacy name).");
  queries_failed_ = registry_.AddCounter(
      "s2rdf_queries_failed_total",
      "Admitted queries that returned an error (parse, compile or "
      "execution failure).");
  rejected_total_ = registry_.AddCounter(
      "s2rdf_rejected_total",
      "Connections rejected by admission control (legacy name).");
  queries_rejected_ = registry_.AddCounter(
      "s2rdf_queries_rejected_total",
      "Connections rejected with 503 by admission control.");
  slow_queries_ = registry_.AddCounter(
      "s2rdf_slow_queries_total",
      "Queries at or above EndpointOptions::slow_query_ms.");
  slow_queries_suppressed_ = registry_.AddCounter(
      "s2rdf_slow_query_log_suppressed_total",
      "Slow-query log lines dropped by the per-query-text rate limit.");
  const BuildInfo& build = GetBuildInfo();
  registry_.AddInfo(
      "s2rdf_build_info",
      "Identity of the running binary (constant 1; payload in labels).",
      std::string("sha=\"") + build.git_sha + "\",build=\"" +
          build.build_type + "\",compiler=\"" + build.compiler + "\"");
  registry_.AddGauge("s2rdf_queries_in_flight",
                     "Queries currently inside Execute.", [this]() {
                       return in_flight_.load(std::memory_order_relaxed);
                     });
  registry_.AddGauge("s2rdf_queue_depth",
                     "Connections waiting for a worker.", [this]() {
                       return pool_ != nullptr ? pool_->QueueDepth() : 0;
                     });
  exec_input_ = registry_.AddCounter(
      "s2rdf_exec_input_tuples_total",
      "Base-table tuples scanned by successful queries.");
  exec_intermediate_ = registry_.AddCounter(
      "s2rdf_exec_intermediate_tuples_total",
      "Intermediate tuples produced by successful queries.");
  exec_comparisons_ = registry_.AddCounter(
      "s2rdf_exec_join_comparisons_total",
      "Pairwise join comparisons performed by successful queries.");
  exec_shuffled_ = registry_.AddCounter(
      "s2rdf_exec_shuffled_tuples_total",
      "Tuples crossing partitions under the repartition model.");
  exec_output_ = registry_.AddCounter(
      "s2rdf_exec_output_tuples_total",
      "Result tuples returned by successful queries.");
  registry_.AddGauge("s2rdf_catalog_materialized_tables",
                     "Tables materialized in the catalog.", [this]() {
                       return db_.catalog().NumMaterializedTables();
                     });
  registry_.AddGauge("s2rdf_catalog_cached_bytes",
                     "Bytes of tables resident in memory.",
                     [this]() { return db_.catalog().CachedBytes(); });
  registry_.AddGauge("s2rdf_lazy_extvp_pairs_computed",
                     "ExtVP reductions built by the lazy path.",
                     [this]() { return db_.lazy_pairs_computed(); });
  registry_.AddGauge("s2rdf_storage_corruptions_detected",
                     "Checksum failures detected by the catalog.", [this]() {
                       return db_.catalog().corruptions_detected();
                     });
  registry_.AddGauge("s2rdf_queries_degraded",
                     "Queries that fell back to superset tables.",
                     [this]() { return db_.catalog().queries_degraded(); });
  registry_.AddGauge("s2rdf_recovery_quarantined_tables",
                     "Tables quarantined by startup recovery.",
                     [this]() { return db_.catalog().quarantined_tables(); });
  registry_.AddGauge("s2rdf_read_retries_total",
                     "Transient-read retry attempts by the catalog.",
                     [this]() { return db_.catalog().read_retries(); });
  registry_.AddGauge(
      "s2rdf_stale_sf_fallbacks_total",
      "Optimizer estimates that ignored a stale ExtVP statistic.",
      [this]() { return db_.catalog().stale_sf_fallbacks(); });
  registry_.AddGauge(
      "s2rdf_stale_extvp_sources",
      "VP tables whose ExtVP dependents await a deferred refresh.",
      [this]() { return db_.catalog().stale_source_count(); });
  ingest_batches_ = registry_.AddCounter(
      "s2rdf_ingest_batches_total", "Batches committed via POST /ingest.");
  ingest_triples_ = registry_.AddCounter(
      "s2rdf_ingest_triples_total",
      "New triples added by POST /ingest (post-dedup).");
  ingest_failures_ = registry_.AddCounter(
      "s2rdf_ingest_failures_total",
      "POST /ingest requests that failed to parse or commit.");
  // Helper threads of the process-wide morsel pool. Fixed at first use
  // and shared by every in-flight query, so total execution threads
  // stay at num_workers + this, independent of load.
  registry_.AddGauge("s2rdf_task_pool_threads",
                     "Helper threads in the shared morsel pool.", []() {
                       return static_cast<uint64_t>(
                           TaskPool::Shared()->num_threads());
                     });
  // Shared-pool saturation: queue depth gauge + queue-wait histogram
  // (registered by the pool itself so the instrumentation lives next to
  // the queue it measures).
  TaskPool::Shared()->AttachMetrics(&registry_);
  latency_seconds_ = registry_.AddHistogram(
      "s2rdf_query_latency_seconds",
      "End-to-end query wall time (parse + compile + execute).",
      LatencySecondsBuckets());
  parse_seconds_ = registry_.AddHistogram(
      "s2rdf_parse_seconds", "Query parse stage wall time.",
      LatencySecondsBuckets());
  compile_seconds_ = registry_.AddHistogram(
      "s2rdf_compile_seconds",
      "Query compile stage wall time (incl. lazy ExtVP).",
      LatencySecondsBuckets());
  exec_seconds_ = registry_.AddHistogram(
      "s2rdf_exec_seconds", "Plan execution stage wall time.",
      LatencySecondsBuckets());
  shuffle_bytes_ = registry_.AddHistogram(
      "s2rdf_shuffle_bytes",
      "Estimated shuffle volume per successful query "
      "(shuffled tuples x 24 bytes).",
      LogBuckets(64, 4.0, 16));
  rows_scanned_ = registry_.AddHistogram(
      "s2rdf_rows_scanned",
      "Base-table rows scanned per successful query.",
      LogBuckets(1, 4.0, 16));
  peak_table_bytes_ = registry_.AddHistogram(
      "s2rdf_query_peak_table_bytes",
      "Per-query high-water mark of simultaneously-live materialized "
      "Table bytes.",
      LogBuckets(1024, 4.0, 16));
}

SparqlEndpoint::QueryTicket SparqlEndpoint::BeginQuery(
    const std::string& query_text) {
  MutexLock lock(&queries_mu_);
  QueryTicket ticket;
  ticket.id = next_query_id_++;
  // Deterministically derived from (instance salt, sequence id):
  // collision-free within an endpoint, salted across endpoints.
  ticket.trace_id = FormatHex64(SplitMix64(trace_salt_ ^ ticket.id).Next());
  InFlightQuery entry;
  entry.trace_id = ticket.trace_id;
  entry.query = TruncateForDisplay(query_text);
  entry.start = MonotonicNow();
  in_flight_queries_.emplace(ticket.id, std::move(entry));
  return ticket;
}

void SparqlEndpoint::FinishQuery(QueryRecord record) {
  MutexLock lock(&queries_mu_);
  in_flight_queries_.erase(record.id);
  recent_.push_back(std::move(record));
  while (recent_.size() > kRecentQueryCapacity) recent_.pop_front();
}

std::vector<QueryRecord> SparqlEndpoint::RecentQueries() const {
  MutexLock lock(&queries_mu_);
  return {recent_.rbegin(), recent_.rend()};
}

HttpResponse SparqlEndpoint::DebugQueriesResponse() const {
  std::string out;
  {
    MutexLock lock(&queries_mu_);
    out += "in-flight (" + std::to_string(in_flight_queries_.size()) + "):\n";
    for (const auto& [id, q] : in_flight_queries_) {
      out += "  #" + std::to_string(id) + "  trace=" + q.trace_id +
             "  elapsed=" + FormatMs(MillisSince(q.start)) + " ms  " +
             q.query + "\n";
    }
    out += "recent (" + std::to_string(recent_.size()) + "):\n";
    for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
      const QueryRecord& r = *it;
      out += "  #" + std::to_string(r.id) + "  trace=" + r.trace_id +
             "  status=" + std::to_string(r.http_status);
      if (r.error.empty()) {
        out += "  rows=" + std::to_string(r.rows) +
               "  parse=" + FormatMs(r.parse_ms) +
               " compile=" + FormatMs(r.compile_ms) +
               " exec=" + FormatMs(r.exec_ms) +
               " total=" + FormatMs(r.total_ms) + " ms";
        if (!r.optimizer_mode.empty()) {
          char fp[24];
          std::snprintf(fp, sizeof(fp), "%016llx",
                        static_cast<unsigned long long>(r.plan_fingerprint));
          out += "  opt=" + r.optimizer_mode + " plan=" + fp;
        }
      } else {
        out += "  total=" + FormatMs(r.total_ms) + " ms  error=" + r.error;
      }
      if (r.slow) out += "  SLOW";
      out += "  " + r.query + "\n";
    }
  }
  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  response.body = out;
  return response;
}

HttpResponse SparqlEndpoint::StatuszResponse() const {
  const BuildInfo& build = GetBuildInfo();
  const storage::Catalog& catalog = db_.catalog();
  std::string out = "s2rdf statusz\n";
  out += std::string("build: sha=") + build.git_sha +
         " type=" + build.build_type + " compiler=" + build.compiler + "\n";
  out += "uptime_ms: " + FormatMs(MillisSince(started_at_)) + "\n";
  out += "store: tables=" +
         std::to_string(catalog.NumMaterializedTables()) +
         " tuples=" + std::to_string(catalog.TotalTuples()) +
         " cached_bytes=" + std::to_string(catalog.CachedBytes()) +
         " stale_sources=" + std::to_string(catalog.stale_source_count()) +
         " quarantined=" + std::to_string(catalog.quarantined_tables()) +
         " corruptions=" + std::to_string(catalog.corruptions_detected()) +
         "\n";
  uint64_t in_flight;
  size_t recent;
  {
    MutexLock lock(&queries_mu_);
    in_flight = in_flight_queries_.size();
    recent = recent_.size();
  }
  out += "queries: total=" + std::to_string(queries_total_->Value()) +
         " failed=" + std::to_string(queries_failed_->Value()) +
         " rejected=" + std::to_string(queries_rejected_->Value()) +
         " slow=" + std::to_string(slow_queries_->Value()) +
         " in_flight=" + std::to_string(in_flight) +
         " recent=" + std::to_string(recent) + "\n";
  if (pool_ != nullptr) {
    out += "workers: total=" + std::to_string(pool_->num_workers()) +
           " busy=" + std::to_string(pool_->BusyWorkers()) +
           " queue_depth=" + std::to_string(pool_->QueueDepth()) +
           " queue_capacity=" + std::to_string(options_.queue_capacity) +
           "\n";
  } else {
    out += "workers: not started\n";
  }
  TaskPool* task_pool = TaskPool::Shared();
  out += "task_pool: width=" +
         std::to_string(task_pool->ParallelismWidth()) +
         " queue_depth=" + std::to_string(task_pool->QueueDepth()) + "\n";
  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  response.body = out;
  return response;
}

HttpResponse SparqlEndpoint::Handle(const HttpRequest& request) {
  HttpResponse response;
  if (request.path == "/" && request.method == "GET") {
    response.content_type = "text/html; charset=utf-8";
    response.body =
        "<html><body><h1>S2RDF SPARQL endpoint</h1>"
        "<p>POST or GET /sparql with a <code>query</code> parameter "
        "(optional <code>timeout</code> ms, <code>limit</code> rows, "
        "<code>explain=plan|analyze</code>, <code>trace=1</code>, "
        "<code>optimizer=paper|cost</code>).</p>"
        "<p>Introspection: <a href=\"/metrics\">/metrics</a>, "
        "<a href=\"/debug/queries\">/debug/queries</a>, "
        "<a href=\"/statusz\">/statusz</a>.</p>"
        "<p>Tables: " +
        std::to_string(db_.catalog().NumMaterializedTables()) +
        ", tuples: " + std::to_string(db_.catalog().TotalTuples()) +
        "</p></body></html>";
    return response;
  }
  if (request.path == "/health" && request.method == "GET") {
    response.body = std::string("ok ") + GetBuildInfo().git_sha + "\n";
    return response;
  }
  if (request.path == "/metrics" && request.method == "GET") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_.RenderPrometheus();
    return response;
  }
  if (request.path == "/debug/queries" && request.method == "GET") {
    return DebugQueriesResponse();
  }
  if (request.path == "/statusz" && request.method == "GET") {
    return StatuszResponse();
  }
  if (request.path == "/ingest") {
    if (request.method != "POST") {
      response.status_code = 405;
      response.body = "POST an N-Triples body to /ingest\n";
      return response;
    }
    return RunIngest(request);
  }
  if (request.path != "/sparql") {
    return ErrorResponse(NotFoundError("no such resource: " + request.path));
  }

  // Request parameters come from the URL query string (always) plus, for
  // form POSTs, the form body.
  std::map<std::string, std::string> params =
      ParseQueryString(request.query_string);
  std::string query_text = params["query"];
  if (request.method == "POST") {
    std::string content_type = request.Header("content-type");
    if (content_type.find("application/sparql-query") != std::string::npos) {
      query_text = request.body;
    } else if (content_type.find("application/x-www-form-urlencoded") !=
                   std::string::npos ||
               content_type.empty()) {
      auto form = ParseQueryString(request.body);
      for (auto& [key, value] : form) params[key] = std::move(value);
      query_text = params["query"];
    } else {
      response.status_code = 415;
      response.body = "unsupported content type: " + content_type + "\n";
      return response;
    }
  } else if (request.method != "GET") {
    response.status_code = 405;
    response.body = "use GET or POST\n";
    return response;
  }

  if (query_text.empty()) {
    return ErrorResponse(
        InvalidArgumentError("missing 'query' parameter"));
  }

  core::QueryRequest query_request;
  query_request.query = query_text;
  query_request.options.timeout_ms = options_.default_timeout_ms;
  bool present = false;
  uint64_t value = 0;
  if (!ParseParam(params, "timeout", &value, &present)) {
    return ErrorResponse(
        InvalidArgumentError("'timeout' must be a non-negative integer"));
  }
  if (present) query_request.options.timeout_ms = value;
  if (options_.max_timeout_ms > 0 &&
      (query_request.options.timeout_ms == 0 ||
       query_request.options.timeout_ms > options_.max_timeout_ms)) {
    query_request.options.timeout_ms = options_.max_timeout_ms;
  }
  if (!ParseParam(params, "limit", &value, &present)) {
    return ErrorResponse(
        InvalidArgumentError("'limit' must be a non-negative integer"));
  }
  if (present) query_request.options.max_result_rows = value;
  if (!ParseParam(params, "morsel", &value, &present)) {
    return ErrorResponse(
        InvalidArgumentError("'morsel' must be a non-negative integer"));
  }
  if (present) query_request.options.morsel_rows = value;

  bool explain_plan = false;
  bool explain_analyze = false;
  auto explain_it = params.find("explain");
  if (explain_it != params.end()) {
    if (explain_it->second == "plan") {
      explain_plan = true;
    } else if (explain_it->second == "analyze") {
      explain_analyze = true;
    } else {
      return ErrorResponse(
          InvalidArgumentError("'explain' must be 'plan' or 'analyze'"));
    }
  }
  bool want_trace = false;
  auto trace_it = params.find("trace");
  if (trace_it != params.end()) {
    if (trace_it->second != "1" && trace_it->second != "0") {
      return ErrorResponse(InvalidArgumentError("'trace' must be 0 or 1"));
    }
    want_trace = trace_it->second == "1";
  }
  auto optimizer_it = params.find("optimizer");
  if (optimizer_it != params.end()) {
    auto mode = core::ParseOptimizerMode(optimizer_it->second);
    if (!mode.ok()) return ErrorResponse(mode.status());
    query_request.options.optimizer.mode = *mode;
  }
  query_request.options.collect_profile = explain_analyze || want_trace;
  query_request.options.explain_plan = explain_plan;

  return RunQuery(request, query_request, explain_plan, explain_analyze,
                  want_trace);
}

HttpResponse SparqlEndpoint::RunIngest(const HttpRequest& request) {
  std::map<std::string, std::string> params =
      ParseQueryString(request.query_string);
  HttpResponse response;
  response.content_type = "application/json; charset=utf-8";
  if (params["refresh"] == "1") {
    auto refreshed = db_.RefreshStaleExtVp();
    if (!refreshed.ok()) {
      ingest_failures_->Increment();
      return ErrorResponse(refreshed.status());
    }
    response.body =
        "{\"extvp_refreshed\":" + std::to_string(*refreshed) +
        ",\"stale_sources\":" +
        std::to_string(db_.catalog().stale_source_count()) + "}\n";
    return response;
  }
  auto batch = core::MakeBatchFromNTriples(request.body);
  if (!batch.ok()) {
    ingest_failures_->Increment();
    return ErrorResponse(batch.status());
  }
  batch->defer_extvp_maintenance = params["defer"] == "1";
  auto result = db_.Ingest(*batch);
  if (!result.ok()) {
    ingest_failures_->Increment();
    return ErrorResponse(result.status());
  }
  ingest_batches_->Increment();
  ingest_triples_->Increment(result->triples_added);
  char body[320];
  std::snprintf(
      body, sizeof(body),
      "{\"triples_in_batch\":%llu,\"triples_added\":%llu,"
      "\"generation\":%llu,\"vp_tables_updated\":%llu,"
      "\"extvp_tables_updated\":%llu,\"stale_sources_marked\":%llu,"
      "\"millis\":%.3f}\n",
      static_cast<unsigned long long>(result->triples_in_batch),
      static_cast<unsigned long long>(result->triples_added),
      static_cast<unsigned long long>(result->generation),
      static_cast<unsigned long long>(result->vp_tables_updated),
      static_cast<unsigned long long>(result->extvp_tables_updated),
      static_cast<unsigned long long>(result->stale_sources_marked),
      result->millis);
  response.body = body;
  return response;
}

void SparqlEndpoint::LogSlowQuery(const QueryTicket& ticket, double total_ms,
                                  const std::string& query_text) {
  const std::string display = TruncateForDisplay(query_text);
  uint64_t suppressed = 0;
  // Keyed by the (truncated) query text: one hot pathological query
  // cannot flood the sink, distinct queries do not contend.
  if (!slow_query_limiter_.Allow(display, &suppressed)) {
    slow_queries_suppressed_->Increment();
    return;
  }
  if (options_.slow_query_log) {
    std::string line = "[s2rdf] slow query #" + std::to_string(ticket.id) +
                       " trace=" + ticket.trace_id + " (" + FormatMs(total_ms) +
                       " ms >= " + std::to_string(options_.slow_query_ms) +
                       " ms): " + display;
    if (suppressed > 0) {
      line += " suppressed=" + std::to_string(suppressed);
    }
    options_.slow_query_log(line);
    return;
  }
  LogEvent(LogLevel::kWarn, "slow_query",
           {{"trace_id", ticket.trace_id}, {"query_id", ticket.id},
            {"total_ms", total_ms},
            {"threshold_ms", options_.slow_query_ms},
            {"suppressed", suppressed},
            {"query", display}});
}

HttpResponse SparqlEndpoint::RunQuery(const HttpRequest& request,
                                      core::QueryRequest query_request,
                                      bool explain_plan, bool explain_analyze,
                                      bool want_trace) {
  queries_total_->Increment();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  QueryTicket ticket = BeginQuery(query_request.query);
  query_request.options.trace_id = ticket.trace_id;
  auto start = MonotonicNow();
  auto result = db_.Execute(query_request);
  const double total_ms = MillisSince(start);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  latency_seconds_->Observe(total_ms / 1000.0);

  QueryRecord record;
  record.id = ticket.id;
  record.trace_id = ticket.trace_id;
  record.query = TruncateForDisplay(query_request.query);
  record.total_ms = total_ms;
  const bool slow =
      options_.slow_query_ms > 0 &&
      total_ms >= static_cast<double>(options_.slow_query_ms);
  record.slow = slow;

  if (!result.ok()) {
    // A failed query leaves no engine metrics behind, but it must not
    // vanish from the counters: reconciliation needs
    // queries_total == successes + queries_failed_total.
    query_errors_total_->Increment();
    queries_failed_->Increment();
    record.http_status = HttpStatusForCode(result.status().code());
    record.error = result.status().ToString();
    FinishQuery(std::move(record));
    HttpResponse error = ErrorResponse(result.status());
    error.headers["X-S2RDF-Trace-Id"] = ticket.trace_id;
    return error;
  }

  exec_input_->Increment(result->metrics.input_tuples);
  exec_intermediate_->Increment(result->metrics.intermediate_tuples);
  exec_comparisons_->Increment(result->metrics.join_comparisons);
  exec_shuffled_->Increment(result->metrics.shuffled_tuples);
  exec_output_->Increment(result->metrics.output_tuples);
  parse_seconds_->Observe(result->parse_ms / 1000.0);
  compile_seconds_->Observe(result->compile_ms / 1000.0);
  exec_seconds_->Observe(result->exec_ms / 1000.0);
  shuffle_bytes_->Observe(static_cast<double>(
      result->metrics.shuffled_tuples * kShuffleBytesPerTuple));
  rows_scanned_->Observe(static_cast<double>(result->metrics.input_tuples));
  peak_table_bytes_->Observe(
      static_cast<double>(result->metrics.peak_table_bytes));

  record.http_status = 200;
  record.rows = result->metrics.output_tuples;
  record.parse_ms = result->parse_ms;
  record.compile_ms = result->compile_ms;
  record.exec_ms = result->exec_ms;
  record.optimizer_mode = result->optimizer_mode;
  record.plan_fingerprint = result->plan_fingerprint;
  FinishQuery(std::move(record));

  if (slow) {
    slow_queries_->Increment();
    LogSlowQuery(ticket, total_ms, query_request.query);
  }

  HttpResponse response;
  response.headers["X-S2RDF-Trace-Id"] = ticket.trace_id;
  if (explain_plan) {
    // Compile-only: report the chosen plan with its estimates.
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(result->plan_fingerprint));
    response.content_type = "text/plain; charset=utf-8";
    response.body = "optimizer: " + result->optimizer_mode +
                    "\nfingerprint: " + fp + "\n" + result->plan;
    return response;
  }
  if (explain_analyze) {
    response.content_type = "text/plain; charset=utf-8";
    response.body = result->profile;
    return response;
  }
  if (want_trace) {
    response.content_type = "application/json; charset=utf-8";
    response.body =
        engine::RenderTraceJson(result->profile_data, query_request.query);
    return response;
  }

  ResultFormat format = NegotiateFormat(request.Header("accept"));
  response.content_type = ContentTypeFor(format);
  const rdf::Dictionary& dict = db_.graph().dictionary();
  if (result->is_graph) {
    // CONSTRUCT/DESCRIBE: the result is a graph, not solutions.
    response.content_type = "application/n-triples; charset=utf-8";
    response.body = result->graph_ntriples;
    return response;
  }
  if (result->is_ask) {
    switch (format) {
      case ResultFormat::kXml:
        response.body = sparql::AskToXml(result->ask_result);
        break;
      default:
        response.content_type = ContentTypeFor(ResultFormat::kJson);
        response.body = sparql::AskToJson(result->ask_result);
    }
    return response;
  }
  switch (format) {
    case ResultFormat::kJson:
      response.body = sparql::ResultsToJson(result->table, dict);
      break;
    case ResultFormat::kXml:
      response.body = sparql::ResultsToXml(result->table, dict);
      break;
    case ResultFormat::kCsv:
      response.body = sparql::ResultsToCsv(result->table, dict);
      break;
    case ResultFormat::kTsv:
      response.body = sparql::ResultsToTsv(result->table, dict);
      break;
  }
  return response;
}

StatusOr<int> SparqlEndpoint::Start(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError("socket() failed");
  int reuse = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return IoError("bind() failed on port " + std::to_string(port));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  int bound_port = ntohs(addr.sin_port);
  listen_fd_.store(fd);

  pool_ = std::make_unique<WorkerPool>(options_.num_workers,
                                       options_.queue_capacity);
  pool_->Start();
  pool_->AttachMetrics(&registry_);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LogEvent(LogLevel::kInfo, "server_start",
           {{"port", bound_port},
            {"workers", options_.num_workers},
            {"queue_capacity", static_cast<uint64_t>(options_.queue_capacity)},
            {"build_sha", GetBuildInfo().git_sha}});
  return bound_port;
}

std::string SparqlEndpoint::ReadRequest(int client) {
  // Read the head, then honor Content-Length.
  std::string raw;
  char buf[4096];
  size_t content_length = 0;
  size_t head_end = std::string::npos;
  while (true) {
    ssize_t n = read(client, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = raw.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        auto parsed = ParseHttpRequest(raw.substr(0, head_end + 4));
        if (parsed.ok()) {
          std::string cl = parsed->Header("content-length");
          content_length = cl.empty()
                               ? 0
                               : static_cast<size_t>(std::atoll(cl.c_str()));
        }
      }
    }
    if (head_end != std::string::npos &&
        raw.size() >= head_end + 4 + content_length) {
      break;
    }
  }
  return raw;
}

void SparqlEndpoint::WriteResponse(int client, const HttpResponse& response) {
  std::string wire = response.Serialize();
  size_t written = 0;
  while (written < wire.size()) {
    ssize_t n = write(client, wire.data() + written, wire.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
}

void SparqlEndpoint::HandleConnection(int client) {
  if (options_.worker_hook) options_.worker_hook();
  std::string raw = ReadRequest(client);
  HttpResponse response;
  auto request = ParseHttpRequest(raw);
  if (!request.ok()) {
    response = ErrorResponse(request.status());
  } else {
    response = Handle(*request);
  }
  WriteResponse(client, response);
  close(client);
}

void SparqlEndpoint::AcceptLoop() {
  while (running_) {
    int client = accept(listen_fd_.load(), nullptr, nullptr);
    if (client < 0) {
      if (!running_) break;
      continue;
    }
    bool admitted = pool_->Submit([this, client] { HandleConnection(client); });
    if (!admitted) {
      // Admission control: every worker busy and the queue full. Read
      // the request before answering so the close doesn't RST the
      // client's receive buffer, then reject with 503.
      rejected_total_->Increment();
      queries_rejected_->Increment();
      (void)ReadRequest(client);
      WriteResponse(client,
                    ErrorResponse(ResourceExhaustedError(
                        "server overloaded: connection queue is full")));
      close(client);
    }
  }
}

EndpointStats SparqlEndpoint::Stats() const {
  EndpointStats stats;
  stats.queries_total = queries_total_->Value();
  stats.query_errors_total = query_errors_total_->Value();
  stats.rejected_total = rejected_total_->Value();
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.queue_depth = pool_ != nullptr ? pool_->QueueDepth() : 0;
  stats.slow_queries_total = slow_queries_->Value();
  stats.cumulative.input_tuples = exec_input_->Value();
  stats.cumulative.intermediate_tuples = exec_intermediate_->Value();
  stats.cumulative.join_comparisons = exec_comparisons_->Value();
  stats.cumulative.shuffled_tuples = exec_shuffled_->Value();
  stats.cumulative.output_tuples = exec_output_->Value();
  return stats;
}

void SparqlEndpoint::Stop() {
  if (!running_) return;
  running_ = false;
  // Unblock accept() by shutting the listener down.
  int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain admitted connections, then join the workers.
  if (pool_ != nullptr) pool_->Stop();
  LogEvent(LogLevel::kInfo, "server_stop",
           {{"queries_total", queries_total_->Value()},
            {"queries_failed", queries_failed_->Value()},
            {"queries_rejected", queries_rejected_->Value()}});
}

SparqlEndpoint::~SparqlEndpoint() { Stop(); }

}  // namespace s2rdf::server
