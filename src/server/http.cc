#include "server/http.h"

#include <cctype>

#include "common/strings.h"

namespace s2rdf::server {

std::string HttpRequest::Header(const std::string& lower_name) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? "" : it->second;
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 415:
      return "Unsupported Media Type";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    std::string(ReasonPhrase(status_code)) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    if (name == "Content-Type" || name == "Content-Length" ||
        name == "Connection") {
      continue;
    }
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw) {
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return InvalidArgumentError("incomplete HTTP request head");
  }
  std::string_view head = raw.substr(0, head_end);
  HttpRequest request;
  request.body = std::string(raw.substr(head_end + 4));

  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::vector<std::string> parts =
      StrSplit(std::string(request_line), ' ');
  if (parts.size() < 3) {
    return InvalidArgumentError("malformed HTTP request line");
  }
  request.method = parts[0];
  std::string target = parts[1];
  size_t question = target.find('?');
  if (question == std::string::npos) {
    request.path = target;
  } else {
    request.path = target.substr(0, question);
    request.query_string = target.substr(question + 1);
  }

  // Headers.
  size_t pos = line_end == std::string_view::npos ? head.size()
                                                  : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    request.headers[name] =
        std::string(StripWhitespace(line.substr(colon + 1)));
  }
  return request;
}

std::string PercentDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < encoded.size() &&
               std::isxdigit(static_cast<unsigned char>(encoded[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(encoded[i + 2]))) {
      auto hex = [](char h) {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        return h - 'A' + 10;
      };
      out += static_cast<char>(hex(encoded[i + 1]) * 16 +
                               hex(encoded[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view qs) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= qs.size()) {
    size_t amp = qs.find('&', start);
    if (amp == std::string_view::npos) amp = qs.size();
    std::string_view pair = qs.substr(start, amp - start);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[PercentDecode(pair)] = "";
      } else {
        out[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
    }
    if (amp == qs.size()) break;
    start = amp + 1;
  }
  return out;
}

}  // namespace s2rdf::server
