#ifndef S2RDF_SERVER_HTTP_H_
#define S2RDF_SERVER_HTTP_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

// Minimal HTTP/1.1 plumbing for the SPARQL Protocol endpoint: request
// parsing, response serialization, percent-decoding and query-string
// handling. Deliberately small — one request per connection, no
// keep-alive, no chunked encoding.

namespace s2rdf::server {

struct HttpRequest {
  std::string method;                  // "GET", "POST", ...
  std::string path;                    // Path without the query string.
  std::string query_string;            // Raw text after '?'.
  std::map<std::string, std::string> headers;  // Lower-cased names.
  std::string body;

  // A header value, or "" when absent.
  std::string Header(const std::string& lower_name) const;
};

struct HttpResponse {
  int status_code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  // Extra response headers (e.g. X-S2RDF-Trace-Id), emitted verbatim
  // after the built-in Content-Type/Content-Length/Connection trio.
  // Names that collide with the built-ins are skipped.
  std::map<std::string, std::string> headers;
  std::string body;

  // Serializes status line + headers + body.
  std::string Serialize() const;
};

// Parses the head + body of an HTTP/1.1 request. Requires the full
// request text (the server reads until Content-Length is satisfied).
StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw);

// Decodes %XX escapes and '+' (form encoding).
std::string PercentDecode(std::string_view encoded);

// Parses "a=1&b=2" (values percent-decoded).
std::map<std::string, std::string> ParseQueryString(std::string_view qs);

// Human-readable reason phrase for a status code.
std::string_view ReasonPhrase(int status_code);

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_HTTP_H_
