#ifndef S2RDF_SERVER_SPARQL_ENDPOINT_H_
#define S2RDF_SERVER_SPARQL_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/s2rdf.h"
#include "server/http.h"
#include "server/worker_pool.h"

// SPARQL Protocol endpoint over an S2RDF store: the network face an
// RDF store is expected to have. Implements the query operation of the
// W3C SPARQL 1.1 Protocol:
//
//   GET  /sparql?query=<urlencoded>[&timeout=<ms>][&limit=<rows>]
//   POST /sparql   (application/x-www-form-urlencoded: query=...)
//   POST /sparql   (application/sparql-query: raw query body)
//   GET  /health   liveness probe ("ok")
//   GET  /metrics  text exposition of server counters
//
// Result format is chosen from the Accept header (JSON by default;
// XML, CSV, TSV supported). GET / serves a small status page.
//
// Connections are served by a fixed worker pool over a bounded queue;
// when the queue is full new requests are answered 503 instead of
// queueing unboundedly (admission control). Query errors map onto HTTP
// statuses: kInvalidArgument -> 400, kNotFound -> 404,
// kDeadlineExceeded -> 408, kCancelled/kResourceExhausted -> 503,
// kUnimplemented -> 501, everything else -> 500.

namespace s2rdf::server {

struct EndpointOptions {
  // Worker threads executing queries (one connection each). Intra-query
  // morsel parallelism (parallel_execution) does NOT multiply this:
  // every query draws helper tasks from the one process-wide TaskPool
  // (sized to the hardware), and a query whose helpers are busy simply
  // runs its morsels on its own worker thread — so total execution
  // threads are bounded by num_workers + TaskPool::Shared()'s helpers
  // regardless of load, and a saturated pool can never deadlock the
  // endpoint.
  int num_workers = 4;
  // Connections allowed to wait beyond the busy workers; the next one
  // is rejected with 503.
  size_t queue_capacity = 16;
  // Applied to requests that carry no ?timeout= parameter (0 = none).
  uint64_t default_timeout_ms = 0;
  // Upper bound on client-requested timeouts (0 = unbounded).
  uint64_t max_timeout_ms = 0;
  // Test hook, run by the worker before handling each connection.
  std::function<void()> worker_hook;
};

// Point-in-time server counters (all cumulative since Start except
// in_flight / queue_depth).
struct EndpointStats {
  uint64_t queries_total = 0;
  uint64_t query_errors_total = 0;
  uint64_t rejected_total = 0;
  uint64_t in_flight = 0;
  uint64_t queue_depth = 0;
  // Sum of per-query engine metrics over all successful queries.
  engine::ExecMetrics cumulative;
};

class SparqlEndpoint {
 public:
  // `db` must outlive the endpoint.
  explicit SparqlEndpoint(core::S2Rdf* db,
                          EndpointOptions options = EndpointOptions())
      : db_(*db), options_(std::move(options)) {}

  // Pure request -> response mapping (transport-independent; this is
  // what the tests exercise and what the worker threads call).
  HttpResponse Handle(const HttpRequest& request);

  // Starts the socket server on 127.0.0.1:`port` (0 = ephemeral): an
  // acceptor thread plus the worker pool. Returns the bound port.
  StatusOr<int> Start(int port);

  // Stops accepting, drains admitted connections, joins all threads.
  void Stop();

  EndpointStats Stats() const;

  ~SparqlEndpoint();

 private:
  void AcceptLoop();
  // Reads one request from `client`, handles it, writes the response.
  void HandleConnection(int client);
  // Reads head + Content-Length body; empty string on read failure.
  std::string ReadRequest(int client);
  void WriteResponse(int client, const HttpResponse& response);

  core::S2Rdf& db_;
  EndpointOptions options_;
  // Atomic: Stop() closes the listener while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<WorkerPool> pool_;

  std::atomic<uint64_t> queries_total_{0};
  std::atomic<uint64_t> query_errors_total_{0};
  std::atomic<uint64_t> rejected_total_{0};
  std::atomic<uint64_t> in_flight_{0};
  // Guards cumulative_ (ExecMetrics is a plain struct).
  mutable Mutex metrics_mu_;
  engine::ExecMetrics cumulative_ S2RDF_GUARDED_BY(metrics_mu_);
};

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_SPARQL_ENDPOINT_H_
