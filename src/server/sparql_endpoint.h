#ifndef S2RDF_SERVER_SPARQL_ENDPOINT_H_
#define S2RDF_SERVER_SPARQL_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/s2rdf.h"
#include "server/http.h"
#include "server/worker_pool.h"

// SPARQL Protocol endpoint over an S2RDF store: the network face an
// RDF store is expected to have. Implements the query operation of the
// W3C SPARQL 1.1 Protocol:
//
//   GET  /sparql?query=<urlencoded>[&timeout=<ms>][&limit=<rows>]
//                [&explain=plan|analyze][&trace=1][&optimizer=paper|cost]
//                [&morsel=<rows>]
//   POST /sparql   (application/x-www-form-urlencoded: query=...)
//   POST /sparql   (application/sparql-query: raw query body)
//   GET  /health   liveness probe ("ok <git-sha>")
//   GET  /metrics  Prometheus text exposition of server metrics
//   GET  /debug/queries  in-flight and recently completed queries
//   GET  /statusz  one-page operational summary (store, cache, pools,
//                  build info, uptime)
//
// `explain=analyze` returns the EXPLAIN ANALYZE profile tree (operator
// rows/timings with estimated-vs-actual, chosen tables with layout +
// selectivity factor) as text/plain instead of the solutions;
// `explain=plan` compiles but does not execute, returning the plan with
// its cost estimates; `trace=1` returns Chrome trace_event JSON for
// chrome://tracing / Perfetto. `optimizer=paper|cost` selects the
// Optimize stage (paper heuristic vs cost-based, default paper).
// `morsel=<rows>` pins the parallel operators' rows-per-morsel (default
// 0 = auto-tuned from input width x rows).
//
// Result format is chosen from the Accept header (JSON by default;
// XML, CSV, TSV supported). GET / serves a small status page.
//
// Connections are served by a fixed worker pool over a bounded queue;
// when the queue is full new requests are answered 503 instead of
// queueing unboundedly (admission control). Query errors map onto HTTP
// statuses: kInvalidArgument -> 400, kNotFound -> 404,
// kDeadlineExceeded -> 408, kCancelled/kResourceExhausted -> 503,
// kUnimplemented -> 501, everything else -> 500.
//
// Observability: every metric lives in a per-endpoint MetricsRegistry
// (common/metrics.h) — counters for query outcomes (including
// admission-rejected and failed queries, which never reach the
// cumulative engine metrics), gauges sampled at render time, and
// log-bucketed histograms for query/stage latencies, scanned rows and
// shuffle volume. A ring buffer of recent queries powers /debug/queries
// and the slow-query log.

namespace s2rdf::server {

struct EndpointOptions {
  // Worker threads executing queries (one connection each). Intra-query
  // morsel parallelism (parallel_execution) does NOT multiply this:
  // every query draws helper tasks from the one process-wide TaskPool
  // (sized to the hardware), and a query whose helpers are busy simply
  // runs its morsels on its own worker thread — so total execution
  // threads are bounded by num_workers + TaskPool::Shared()'s helpers
  // regardless of load, and a saturated pool can never deadlock the
  // endpoint.
  int num_workers = 4;
  // Connections allowed to wait beyond the busy workers; the next one
  // is rejected with 503.
  size_t queue_capacity = 16;
  // Applied to requests that carry no ?timeout= parameter (0 = none).
  uint64_t default_timeout_ms = 0;
  // Upper bound on client-requested timeouts (0 = unbounded).
  uint64_t max_timeout_ms = 0;
  // Queries whose total wall time reaches this are counted in
  // s2rdf_slow_queries_total, flagged in /debug/queries and logged via
  // `slow_query_log` (0 = disabled).
  uint64_t slow_query_ms = 0;
  // Sink for slow-query log lines; the structured event log when unset.
  std::function<void(const std::string&)> slow_query_log;
  // Rate limit for the slow-query log: at most one line per query text
  // per this interval; further hits only bump a suppressed count that
  // the next emitted line carries (`suppressed=N`). 0 = log every slow
  // query. Protects the sink from a hot pathological query.
  uint64_t slow_query_log_interval_ms = 5000;
  // Test hook, run by the worker before handling each connection.
  std::function<void()> worker_hook;
};

// Point-in-time server counters (all cumulative since Start except
// in_flight / queue_depth).
struct EndpointStats {
  uint64_t queries_total = 0;
  uint64_t query_errors_total = 0;
  uint64_t rejected_total = 0;
  uint64_t in_flight = 0;
  uint64_t queue_depth = 0;
  uint64_t slow_queries_total = 0;
  // Sum of per-query engine metrics over all successful queries.
  engine::ExecMetrics cumulative;
};

// One completed query in the /debug/queries ring buffer.
struct QueryRecord {
  uint64_t id = 0;
  // Request-scoped trace id (16 hex chars), also returned to the client
  // as the X-S2RDF-Trace-Id response header.
  std::string trace_id;
  std::string query;  // Truncated for display.
  int http_status = 0;
  uint64_t rows = 0;
  double parse_ms = 0.0;
  double compile_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
  bool slow = false;
  std::string error;  // Status message for failed queries.
  // Which Optimize stage planned the query ("paper" or "cost"; empty
  // for graph forms and failures) and the plan's fingerprint hash —
  // two /debug/queries entries with the same fingerprint ran the same
  // plan shape.
  std::string optimizer_mode;
  uint64_t plan_fingerprint = 0;
};

class SparqlEndpoint {
 public:
  // `db` must outlive the endpoint.
  explicit SparqlEndpoint(core::S2Rdf* db,
                          EndpointOptions options = EndpointOptions());

  // Pure request -> response mapping (transport-independent; this is
  // what the tests exercise and what the worker threads call).
  HttpResponse Handle(const HttpRequest& request);

  // Starts the socket server on 127.0.0.1:`port` (0 = ephemeral): an
  // acceptor thread plus the worker pool. Returns the bound port.
  StatusOr<int> Start(int port);

  // Stops accepting, drains admitted connections, joins all threads.
  void Stop();

  EndpointStats Stats() const;

  // Snapshot of the completed-query ring buffer, most recent first.
  std::vector<QueryRecord> RecentQueries() const;

  // The endpoint's metric registry (tests and embedders may add their
  // own metrics; they render on /metrics alongside the built-ins).
  MetricsRegistry& registry() { return registry_; }

  ~SparqlEndpoint();

 private:
  // A query currently inside db_.Execute.
  struct InFlightQuery {
    std::string trace_id;
    std::string query;  // Truncated for display.
    MonotonicTime start{};
  };

  // Admission ticket of one query: the /debug/queries sequence id plus
  // the request-scoped trace id every downstream artifact carries.
  struct QueryTicket {
    uint64_t id = 0;
    std::string trace_id;
  };

  void AcceptLoop();
  // Reads one request from `client`, handles it, writes the response.
  void HandleConnection(int client);
  // Reads head + Content-Length body; empty string on read failure.
  std::string ReadRequest(int client);
  void WriteResponse(int client, const HttpResponse& response);

  // /sparql behind parameter validation: runs the query with full
  // bookkeeping (in-flight tracking, counters, histograms, ring buffer,
  // slow-query log).
  // `query_request` is taken by value: RunQuery stamps the minted trace
  // id into its options before execution.
  HttpResponse RunQuery(const HttpRequest& request,
                        core::QueryRequest query_request, bool explain_plan,
                        bool explain_analyze, bool want_trace);

  // POST /ingest: N-Triples body appended as one atomic batch
  // (?defer=1 skips ExtVP maintenance, marking sources stale;
  // ?refresh=1 instead recomputes everything stale).
  HttpResponse RunIngest(const HttpRequest& request);

  // Registers every built-in metric on registry_.
  void RegisterMetrics();

  QueryTicket BeginQuery(const std::string& query_text)
      S2RDF_EXCLUDES(queries_mu_);
  void FinishQuery(QueryRecord record) S2RDF_EXCLUDES(queries_mu_);

  // Emits (or rate-limit-suppresses) one slow-query log line.
  void LogSlowQuery(const QueryTicket& ticket, double total_ms,
                    const std::string& query_text);

  HttpResponse DebugQueriesResponse() const;
  HttpResponse StatuszResponse() const;

  core::S2Rdf& db_;
  EndpointOptions options_;
  // Atomic: Stop() closes the listener while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::unique_ptr<WorkerPool> pool_;

  // --- Metrics (owned by registry_; raw pointers are stable) -------------
  MetricsRegistry registry_;
  Counter* queries_total_ = nullptr;
  Counter* query_errors_total_ = nullptr;  // Legacy name, same increments
  Counter* queries_failed_ = nullptr;      // as s2rdf_queries_failed_total.
  Counter* rejected_total_ = nullptr;      // Legacy name, same increments
  Counter* queries_rejected_ = nullptr;    // as s2rdf_queries_rejected_total.
  Counter* slow_queries_ = nullptr;
  // POST /ingest bookkeeping.
  Counter* ingest_batches_ = nullptr;
  Counter* ingest_triples_ = nullptr;
  Counter* ingest_failures_ = nullptr;
  // Cumulative engine metrics over successful queries. Five independent
  // atomics (the old mutex-guarded ExecMetrics copy could tear between
  // fields under concurrent /metrics renders).
  Counter* exec_input_ = nullptr;
  Counter* exec_intermediate_ = nullptr;
  Counter* exec_comparisons_ = nullptr;
  Counter* exec_shuffled_ = nullptr;
  Counter* exec_output_ = nullptr;
  Histogram* latency_seconds_ = nullptr;
  Histogram* parse_seconds_ = nullptr;
  Histogram* compile_seconds_ = nullptr;
  Histogram* exec_seconds_ = nullptr;
  Histogram* shuffle_bytes_ = nullptr;
  Histogram* rows_scanned_ = nullptr;
  // Per-query high-water mark of materialized Table bytes.
  Histogram* peak_table_bytes_ = nullptr;
  Counter* slow_queries_suppressed_ = nullptr;
  std::atomic<uint64_t> in_flight_{0};

  // Slow-query log rate limiting (keyed by truncated query text).
  LogRateLimiter slow_query_limiter_;
  // Endpoint start time, for /statusz uptime.
  const MonotonicTime started_at_;
  // Instance salt mixed into trace ids so two endpoints in one process
  // (or across restarts) never mint colliding ids.
  const uint64_t trace_salt_;

  // --- Query introspection ----------------------------------------------
  mutable Mutex queries_mu_;
  uint64_t next_query_id_ S2RDF_GUARDED_BY(queries_mu_) = 1;
  std::map<uint64_t, InFlightQuery> in_flight_queries_
      S2RDF_GUARDED_BY(queries_mu_);
  // Most recent completions, newest at the back; bounded.
  std::deque<QueryRecord> recent_ S2RDF_GUARDED_BY(queries_mu_);
};

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_SPARQL_ENDPOINT_H_
