#ifndef S2RDF_SERVER_SPARQL_ENDPOINT_H_
#define S2RDF_SERVER_SPARQL_ENDPOINT_H_

#include <atomic>
#include <memory>
#include <thread>

#include "common/status.h"
#include "core/s2rdf.h"
#include "server/http.h"

// SPARQL Protocol endpoint over an S2RDF store: the network face an
// RDF store is expected to have. Implements the query operation of the
// W3C SPARQL 1.1 Protocol:
//
//   GET  /sparql?query=<urlencoded>
//   POST /sparql   (application/x-www-form-urlencoded: query=...)
//   POST /sparql   (application/sparql-query: raw query body)
//
// Result format is chosen from the Accept header (JSON by default;
// XML, CSV, TSV supported). GET / serves a small status page.

namespace s2rdf::server {

class SparqlEndpoint {
 public:
  // `db` must outlive the endpoint.
  explicit SparqlEndpoint(core::S2Rdf* db) : db_(*db) {}

  // Pure request -> response mapping (transport-independent; this is
  // what the tests exercise and what the socket loop calls).
  HttpResponse Handle(const HttpRequest& request);

  // Starts the socket server on 127.0.0.1:`port` (0 = ephemeral) in a
  // background thread. Returns the bound port.
  StatusOr<int> Start(int port);

  // Stops the socket server and joins the thread.
  void Stop();

  ~SparqlEndpoint();

 private:
  void ServeLoop();

  core::S2Rdf& db_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread server_thread_;
};

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_SPARQL_ENDPOINT_H_
