#ifndef S2RDF_SERVER_WORKER_POOL_H_
#define S2RDF_SERVER_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

// Fixed-size worker pool with a bounded task queue — the endpoint's
// admission-control primitive. Submit never blocks: when every worker
// is busy and the queue is full it returns false, and the caller turns
// that into an HTTP 503 instead of piling up unbounded work.

namespace s2rdf::server {

class WorkerPool {
 public:
  // `queue_capacity` bounds tasks waiting beyond the ones workers are
  // already running.
  WorkerPool(int num_workers, size_t queue_capacity);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Spawns the worker threads. Call once.
  void Start() S2RDF_EXCLUDES(mu_);

  // Enqueues `task`; returns false (task dropped) when the queue is at
  // capacity or the pool is stopped/not started.
  bool Submit(std::function<void()> task) S2RDF_EXCLUDES(mu_);

  // Lets queued tasks drain, then joins all workers. Idempotent.
  void Stop() S2RDF_EXCLUDES(mu_);

  // Tasks waiting in the queue (excludes tasks currently running).
  size_t QueueDepth() const S2RDF_EXCLUDES(mu_);

  // Workers currently running a task — together with num_workers() the
  // pool's saturation: busy == num_workers means new admissions queue.
  size_t BusyWorkers() const { return busy_.load(std::memory_order_relaxed); }
  int num_workers() const { return num_workers_; }

  // Registers this pool's admission metrics on `registry`:
  //   s2rdf_workers_busy            gauge, workers mid-task
  //   s2rdf_admission_wait_seconds  histogram, Submit -> worker pickup
  // `registry` must outlive the pool. Idempotent per registry.
  void AttachMetrics(MetricsRegistry* registry) S2RDF_EXCLUDES(mu_);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    MonotonicTime enqueued;
  };

  void WorkerLoop() S2RDF_EXCLUDES(mu_);

  const int num_workers_;
  const size_t queue_capacity_;
  std::atomic<size_t> busy_{0};
  // Observed lock-free on the dequeue path; null until AttachMetrics.
  std::atomic<Histogram*> admission_wait_hist_{nullptr};

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<QueuedTask> queue_ S2RDF_GUARDED_BY(mu_);
  bool started_ S2RDF_GUARDED_BY(mu_) = false;
  bool stopping_ S2RDF_GUARDED_BY(mu_) = false;
  // Written by Start/Stop only, which external callers must not
  // overlap; WorkerLoop never touches it.
  std::vector<std::thread> workers_;
};

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_WORKER_POOL_H_
