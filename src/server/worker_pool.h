#ifndef S2RDF_SERVER_WORKER_POOL_H_
#define S2RDF_SERVER_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size worker pool with a bounded task queue — the endpoint's
// admission-control primitive. Submit never blocks: when every worker
// is busy and the queue is full it returns false, and the caller turns
// that into an HTTP 503 instead of piling up unbounded work.

namespace s2rdf::server {

class WorkerPool {
 public:
  // `queue_capacity` bounds tasks waiting beyond the ones workers are
  // already running.
  WorkerPool(int num_workers, size_t queue_capacity);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Spawns the worker threads. Call once.
  void Start();

  // Enqueues `task`; returns false (task dropped) when the queue is at
  // capacity or the pool is stopped/not started.
  bool Submit(std::function<void()> task);

  // Lets queued tasks drain, then joins all workers. Idempotent.
  void Stop();

  // Tasks waiting in the queue (excludes tasks currently running).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  const int num_workers_;
  const size_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace s2rdf::server

#endif  // S2RDF_SERVER_WORKER_POOL_H_
