#ifndef S2RDF_CORE_CARDINALITY_H_
#define S2RDF_CORE_CARDINALITY_H_

#include "core/table_selection.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "storage/catalog.h"

// Cardinality estimation over the catalog's statistics. The inputs are
// exactly what the ExtVP precomputation already pays for: per-table row
// counts and selectivity factors SF = |ExtVP| / |VP| (Sec. 5.2). SF
// entries exist even for reductions the store never materialized (empty
// tables, SF-threshold-pruned tables, quarantined tables), so the
// estimator keeps working across the ExtVP -> VP -> TT degradation
// path — the statistics survive even when the data does not.
//
// Shared variables between patterns combine under the textbook
// independence assumption; the estimates feed the cost-based join
// enumeration in core/optimizer.{h,cc}.

namespace s2rdf::core {

class CardinalityEstimator {
 public:
  // `catalog` and `dict` must outlive the estimator.
  CardinalityEstimator(const storage::Catalog& catalog,
                       const rdf::Dictionary& dict)
      : catalog_(catalog), dict_(dict) {}

  // Estimated output rows of scanning `choice` for `tp`: the chosen
  // table's row count, discounted by sqrt(rows) per residual equality
  // the scan applies on top of the stored table (bound subject/object
  // terms, repeated variables). A bound predicate over the triples
  // table uses the predicate's exact VP row count instead (the catalog
  // knows it even when the VP table is quarantined).
  double ScanRows(const sparql::TriplePattern& tp,
                  const TableChoice& choice) const;

  // Fraction of `tp`'s scan output expected to survive a join with
  // `other`, derived from the ExtVP statistics of their correlations:
  // |ExtVP_corr(p_tp | p_other)| / rows(choice). 1.0 when no statistic
  // applies (unbound predicates, VP-only layouts, shared predicate
  // variables); the minimum over correlations when several apply.
  double KeepFraction(const sparql::TriplePattern& tp,
                      const TableChoice& choice,
                      const sparql::TriplePattern& other) const;

  // Estimated rows of joining the two patterns' scans on their shared
  // variables: max over both directions of rows * keep — a lower bound
  // (every ExtVP-surviving row matches at least one partner), exact
  // when the smaller side's join column is key-like.
  double JoinRows(const sparql::TriplePattern& a, const TableChoice& ca,
                  double scan_rows_a, const sparql::TriplePattern& b,
                  const TableChoice& cb, double scan_rows_b) const;

 private:
  const storage::Catalog& catalog_;
  const rdf::Dictionary& dict_;
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_CARDINALITY_H_
