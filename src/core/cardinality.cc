#include "core/cardinality.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "core/layout_names.h"

namespace s2rdf::core {

namespace {

using sparql::PatternTerm;
using sparql::TriplePattern;

bool SameVar(const PatternTerm& a, const PatternTerm& b) {
  return a.is_variable() && b.is_variable() && a.value == b.value;
}

struct CorrelationCase {
  bool applies;
  Correlation corr;
};

// Mirrors table_selection.cc: the correlations of `tp` to `other` in the
// fixed SS/SO/OS order Algorithm 1 examines them.
std::array<CorrelationCase, 3> CorrelationsTo(const TriplePattern& tp,
                                              const TriplePattern& other) {
  return {{{SameVar(tp.subject, other.subject), Correlation::kSS},
           {SameVar(tp.subject, other.object), Correlation::kSO},
           {SameVar(tp.object, other.subject), Correlation::kOS}}};
}

}  // namespace

double CardinalityEstimator::ScanRows(const TriplePattern& tp,
                                      const TableChoice& choice) const {
  if (choice.empty_result) return 0.0;
  double rows = static_cast<double>(choice.rows);

  // A bound predicate scanned out of the triples table keeps exactly the
  // predicate's VP rows — the catalog records them even for quarantined
  // VP tables, so the degraded TT scan still estimates correctly.
  if (choice.is_triples_table && !tp.predicate.is_variable()) {
    std::optional<rdf::TermId> p = dict_.Find(tp.predicate.value);
    if (p.has_value()) {
      const storage::TableStats* vp = catalog_.GetStats(VpTableName(dict_, *p));
      if (vp != nullptr) rows = static_cast<double>(vp->rows);
    }
  }

  // Residual equalities the scan applies on top of the stored table:
  // each bound subject/object term, and each repeated variable inside
  // the pattern, keeps ~1/sqrt(base) of the rows (the square-root rule
  // for unknown-frequency point selections).
  const double base = std::max(rows, 2.0);
  int residuals = 0;
  if (!tp.subject.is_variable()) ++residuals;
  if (!tp.object.is_variable()) ++residuals;
  if (SameVar(tp.subject, tp.object) || SameVar(tp.subject, tp.predicate) ||
      SameVar(tp.predicate, tp.object)) {
    ++residuals;
  }
  for (int i = 0; i < residuals; ++i) rows /= std::sqrt(base);
  return std::max(rows, 0.0);
}

double CardinalityEstimator::KeepFraction(const TriplePattern& tp,
                                          const TableChoice& choice,
                                          const TriplePattern& other) const {
  if (tp.predicate.is_variable() || other.predicate.is_variable()) return 1.0;
  std::optional<rdf::TermId> p1 = dict_.Find(tp.predicate.value);
  std::optional<rdf::TermId> p2 = dict_.Find(other.predicate.value);
  if (!p1.has_value() || !p2.has_value()) return 1.0;

  const double denom = std::max(static_cast<double>(choice.rows), 1.0);
  double keep = 1.0;
  for (const CorrelationCase& cand : CorrelationsTo(tp, other)) {
    if (!cand.applies) continue;
    if (cand.corr == Correlation::kSS && *p1 == *p2) continue;
    if (catalog_.IsStaleSource(VpTableName(dict_, *p1)) ||
        catalog_.IsStaleSource(VpTableName(dict_, *p2))) {
      // The reduction's count predates a deferred ingest and
      // undercounts; using it would make the optimizer confidently
      // wrong, so fall back to the conservative keep = 1 (and surface
      // the degradation on /metrics).
      catalog_.NoteStaleSfFallback();
      continue;
    }
    const storage::TableStats* stats =
        catalog_.GetStats(ExtVpTableName(dict_, cand.corr, *p1, *p2));
    if (stats == nullptr) continue;  // Direction not precomputed.
    // |ExtVP| rows are recorded whether or not the reduction was
    // materialized; against the chosen table they bound the surviving
    // fraction (clamped: the choice may itself be a smaller reduction).
    keep = std::min(keep, std::clamp(static_cast<double>(stats->rows) / denom,
                                     0.0, 1.0));
  }
  return keep;
}

double CardinalityEstimator::JoinRows(const TriplePattern& a,
                                      const TableChoice& ca,
                                      double scan_rows_a,
                                      const TriplePattern& b,
                                      const TableChoice& cb,
                                      double scan_rows_b) const {
  // Every surviving row matches at least one partner row (that is what
  // |ExtVP| counts), so max(surviving) is a guaranteed lower bound on
  // the join size — and it is exact whenever the smaller surviving
  // side's join column is key-like, the common case along WatDiv-style
  // chains. min(surviving) underestimates chains to ~0, which makes
  // every downstream plan look free.
  const double surviving_a = scan_rows_a * KeepFraction(a, ca, b);
  const double surviving_b = scan_rows_b * KeepFraction(b, cb, a);
  return std::max(std::max(surviving_a, surviving_b), 0.0);
}

}  // namespace s2rdf::core
