#ifndef S2RDF_CORE_TABLE_SELECTION_H_
#define S2RDF_CORE_TABLE_SELECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "core/extvp_bitmap.h"
#include "core/layout_names.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "storage/catalog.h"

// Algorithm 1 of the paper: choosing, for a triple pattern within a BGP,
// the stored table with the best (smallest) selectivity factor among the
// VP table and all ExtVP tables induced by the pattern's correlations to
// the other patterns in the BGP.

namespace s2rdf::core {

// Which layout family the compiler targets.
enum class Layout {
  kExtVp,         // VP + ExtVP with statistics (the paper's S2RDF).
  kVp,            // Plain vertical partitioning (baseline in Sec. 7.1).
  kTriplesTable,  // Single triples table (Sec. 4.1 baseline).
  // VP + bit-vector ExtVP with correlation intersection (the paper's
  // future work, Sec. 8): each pattern scans its VP table through the
  // AND of the bitmaps of *all* its correlations.
  kExtVpBitmap,
};

struct TableChoice {
  // Catalog name of the table to scan. Empty when `empty_result`.
  std::string table_name;
  // SF of the chosen table (1.0 for VP / triples table).
  double sf = 1.0;
  // Tuple count of the chosen table (join-order key of Algorithm 4).
  uint64_t rows = 0;
  // The statistics prove the whole BGP has no results (SF = 0 on a
  // required correlation, or a bound term absent from the dictionary).
  bool empty_result = false;
  // The pattern has an unbound predicate and scans the triples table.
  bool is_triples_table = false;
  // Selection had to substitute a superset table because its first
  // choice (or the VP table itself) is quarantined: ExtVP degrades to
  // the base VP table, a quarantined VP degrades to the triples table.
  // Results are identical (the substitutes are supersets whose extra
  // rows cannot satisfy the pattern's joins/selections); only
  // performance suffers. Counted as `queries_degraded` by the compiler.
  bool degraded = false;
  // kExtVpBitmap only: the intersection of all correlation bitmaps; the
  // scan reads `table_name` (a VP table) through this filter. Null when
  // no correlation reduces the table.
  std::shared_ptr<Bitmap> row_filter;
  // Human-readable description of the intersected correlations.
  std::string row_filter_label;
  // Layout family actually chosen ("VP", "ExtVP", "TT", "ExtVP-bitmap"),
  // carried into the plan for EXPLAIN ANALYZE.
  std::string layout_label = "VP";
};

// Runs Algorithm 1 for `tp` within `bgp`. `tp_index` is the position of
// `tp` inside `bgp` (used to skip self-correlation). When
// `use_statistics_shortcut` is false, empty correlations do not
// short-circuit the query (ablation switch). `bitmap_store` is required
// for (and only consulted by) Layout::kExtVpBitmap.
StatusOr<TableChoice> SelectTable(size_t tp_index,
                                  const std::vector<sparql::TriplePattern>& bgp,
                                  Layout layout,
                                  bool use_statistics_shortcut,
                                  const storage::Catalog& catalog,
                                  const rdf::Dictionary& dict,
                                  const ExtVpBitmapStore* bitmap_store =
                                      nullptr);

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_TABLE_SELECTION_H_
