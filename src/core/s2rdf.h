#ifndef S2RDF_CORE_S2RDF_H_
#define S2RDF_CORE_S2RDF_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/compiler.h"
#include "core/extvp_bitmap.h"
#include "core/layouts.h"
#include "engine/exec_context.h"
#include "engine/profile.h"
#include "engine/table.h"
#include "rdf/graph.h"
#include "storage/catalog.h"
#include "storage/ingest.h"

// The S2RDF system facade: loads an RDF graph, builds the relational
// layouts (triples table, VP, ExtVP with an optional SF threshold), and
// executes SPARQL queries over a chosen layout, reporting both results
// and the execution metrics the paper argues about (input size, join
// comparisons, shuffle volume).
//
// Execute is thread-safe: one S2Rdf instance serves many concurrent
// queries (each with its own ExecContext and metrics). The catalog and
// dictionary are internally locked, lazy-ExtVP reductions are built
// exactly once even when several queries race for the same pair, and
// LRU eviction never frees a table an in-flight query still reads.
//
// Example:
//   rdf::Graph g;
//   rdf::ParseNTriples(data, &g);
//   S2RDF_ASSIGN_OR_RETURN(auto db, core::S2Rdf::Create(std::move(g), {}));
//   core::QueryRequest request;
//   request.query = "SELECT * WHERE { ?s ?p ?o }";
//   request.options.timeout_ms = 5000;
//   S2RDF_ASSIGN_OR_RETURN(auto result, db->Execute(request));

namespace s2rdf::core {

struct S2RdfOptions {
  // Storage directory; empty keeps all tables in memory.
  std::string storage_dir;
  // File-I/O environment for the catalog and persisted artifacts
  // (Env::Default() when null; fault-injection tests substitute their
  // own). Must outlive the S2Rdf instance.
  storage::Env* env = nullptr;
  // ExtVP selectivity-factor threshold (Sec. 5.3). 1.0 = no threshold.
  double sf_threshold = 1.0;
  // Layouts to build. The triples table is required for queries with
  // unbound predicates; VP is always built (base layout).
  bool build_triples_table = true;
  bool build_extvp = true;
  // "Pay as you go" mode (Sec. 7's production suggestion): skip the
  // ExtVP precomputation entirely; each reduction a query needs is
  // materialized on first use and reused by later queries. Mutually
  // exclusive with build_extvp.
  bool lazy_extvp = false;
  // Also build the bit-vector ExtVP representation (future work of
  // Sec. 8), enabling Layout::kExtVpBitmap with correlation
  // intersection.
  bool build_extvp_bitmaps = false;
  ExtVpOptions extvp;
  // Simulated cluster width for the shuffle meter.
  int num_partitions = 9;
  // Execute large joins partition-parallel on num_partitions threads.
  bool parallel_execution = false;
  // In-memory table-cache budget for disk-backed stores (0 = unlimited);
  // LRU tables are evicted between queries and reload from disk.
  uint64_t memory_budget_bytes = 0;
  // When non-empty, every profiled query's Chrome trace_event JSON is
  // also written to "<trace_dir>/trace-NNNNNN.json" (sequence-numbered,
  // via the configured Env). Load the files in chrome://tracing or
  // Perfetto.
  std::string trace_dir;
};

// Per-query execution controls, carried by a QueryRequest.
struct QueryOptions {
  // Wall-clock budget covering parse + compile + execute, milliseconds;
  // 0 = unlimited. On expiry Execute returns kDeadlineExceeded (checked
  // at operator boundaries and inside scan/join loops).
  uint64_t timeout_ms = 0;
  // Truncate the solution table to at most this many rows (0 =
  // unlimited). QueryResult::truncated reports whether rows were
  // dropped. Does not apply to CONSTRUCT/DESCRIBE graphs.
  uint64_t max_result_rows = 0;
  // Layout to execute against.
  Layout layout = Layout::kExtVp;
  // EXPLAIN ANALYZE: record per-operator rows and timings.
  bool collect_profile = false;
  // EXPLAIN: parse and compile only; QueryResult carries the plan,
  // SQL, optimizer mode/estimates and fingerprint, but no rows. Not
  // supported for CONSTRUCT/DESCRIBE.
  bool explain_plan = false;
  // Optimizer selection and knobs (paper heuristic vs cost-based).
  OptimizerOptions optimizer;
  // Rows per morsel for the parallel operators (HTTP ?morsel=). 0 (the
  // default) auto-tunes from input width x rows; see MorselRowsFor in
  // engine/parallel.h. Ignored unless parallel execution is on.
  uint64_t morsel_rows = 0;
  // Optional external cancellation: while *cancel is true the query
  // returns kCancelled at the next operator boundary. The flag must
  // outlive the Execute call.
  const std::atomic<bool>* cancel = nullptr;
  // Request-scoped trace id, assigned at admission (the HTTP endpoint
  // generates one per request) or by an embedding caller. Carried into
  // the ExecContext, the profile/Chrome trace, and QueryResult so every
  // artifact of one request shares one id. Empty = untraced.
  std::string trace_id;
};

// The primary query-submission unit: SPARQL text plus its options.
struct QueryRequest {
  std::string query;
  QueryOptions options;
};

struct QueryResult {
  engine::Table table;
  // For ASK queries: whether any solution exists (`table` then holds at
  // most one undecoded witness row).
  bool is_ask = false;
  bool ask_result = false;
  // For CONSTRUCT/DESCRIBE: the resulting graph in N-Triples syntax
  // (`table` is then empty).
  bool is_graph = false;
  std::string graph_ntriples;
  // True when QueryOptions::max_result_rows dropped trailing rows.
  bool truncated = false;
  engine::ExecMetrics metrics;
  // Wall-clock execution time (compile + execute), milliseconds.
  double millis = 0.0;
  // Stage split of `millis`: parsing, compilation (including lazy-ExtVP
  // materialization), and plan execution. Always populated.
  double parse_ms = 0.0;
  double compile_ms = 0.0;
  double exec_ms = 0.0;
  // The Spark-SQL-style statement the compiler produced.
  std::string sql;
  // The physical plan, for inspection.
  std::string plan;
  // Which Optimize stage compiled the plan ("paper" or "cost"); empty
  // for graph forms, which bypass the SELECT pipeline.
  std::string optimizer_mode;
  // FNV-1a hash of `plan` — tells plan shapes apart cheaply in
  // /debug/queries and logs. 0 for graph forms.
  uint64_t plan_fingerprint = 0;
  // Echo of QueryOptions::trace_id.
  std::string trace_id;
  // EXPLAIN ANALYZE rendering (per-operator rows and inclusive times);
  // empty unless profiling was requested.
  std::string profile;
  // The structured profile behind `profile` (operator tree with scan
  // provenance and metric deltas, parallel task spans, stage split);
  // empty unless profiling was requested. Render a Chrome trace with
  // engine::RenderTraceJson.
  engine::QueryProfile profile_data;
};

struct LoadStats {
  double vp_seconds = 0.0;
  double extvp_seconds = 0.0;
  ExtVpBuildStats extvp_stats;
};

class S2Rdf {
 public:
  // Builds all configured layouts for `graph`.
  static StatusOr<std::unique_ptr<S2Rdf>> Create(rdf::Graph graph,
                                                 const S2RdfOptions& options);

  // Reopens a store previously persisted by Create with a non-empty
  // `storage_dir`: runs the startup recovery pass (manifest chain,
  // table verification, quarantine, temp-file cleanup — see
  // recovery_report()), loads the dictionary, then serves queries with
  // tables paged in lazily from disk. The bit-vector ExtVP store is not
  // persisted, so Layout::kExtVpBitmap is unavailable on a reopened
  // store.
  static StatusOr<std::unique_ptr<S2Rdf>> Open(const std::string& storage_dir,
                                               int num_partitions = 9,
                                               storage::Env* env = nullptr);

  // Primary entry point: parses, compiles and executes request.query
  // under request.options. Thread-safe.
  StatusOr<QueryResult> Execute(const QueryRequest& request);

  // Back-compat convenience overload: query text + layout, default
  // options otherwise.
  StatusOr<QueryResult> Execute(std::string_view sparql_text,
                                Layout layout = Layout::kExtVp);

  // Like Execute with full compiler control (ablation switches).
  StatusOr<QueryResult> ExecuteWithOptions(std::string_view sparql_text,
                                           const CompilerOptions& options);

  // Applies one batch of new triples: appends to the triples table and
  // VP tables and delta-maintains dependent ExtVP reductions and SF
  // statistics (or defers that, marking sources stale — see
  // storage::IngestBatch). The whole batch commits as one atomic
  // manifest flip; in-flight queries keep reading the prior generation
  // via their pinned tables. Thread-safe; concurrent Ingest calls are
  // serialized. Not reflected: the in-memory bitmap ExtVP store and
  // property tables (rebuild for those layouts).
  StatusOr<storage::IngestResult> Ingest(const storage::IngestBatch& batch);

  // Recomputes every reduction deferred batches left stale and clears
  // the stale set; returns the number of reductions recomputed.
  StatusOr<uint64_t> RefreshStaleExtVp();

  // Decodes a result table's ids back to canonical term strings.
  std::vector<std::vector<std::string>> DecodeRows(
      const engine::Table& table) const;

  const rdf::Graph& graph() const { return graph_; }
  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }
  const LoadStats& load_stats() const { return load_stats_; }
  // Null unless options.build_extvp_bitmaps was set.
  const ExtVpBitmapStore* bitmap_store() const {
    return bitmap_store_.get();
  }
  // Number of (correlation, p1, p2) pairs computed so far by the lazy
  // "pay as you go" mode.
  uint64_t lazy_pairs_computed() const {
    return lazy_pairs_computed_.load(std::memory_order_relaxed);
  }
  // What the startup recovery pass found (all zero for Create-built
  // instances, which never recover).
  const storage::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

 private:
  S2Rdf(rdf::Graph graph, std::string storage_dir, int num_partitions,
        bool parallel_execution = false, storage::Env* env = nullptr)
      : graph_(std::move(graph)),
        catalog_(std::move(storage_dir), env),
        env_(env != nullptr ? env : storage::Env::Default()),
        num_partitions_(num_partitions),
        parallel_execution_(parallel_execution) {}

  // Common execution path behind both Execute overloads and
  // ExecuteWithOptions.
  StatusOr<QueryResult> ExecuteInternal(std::string_view sparql_text,
                                        const CompilerOptions& compiler_options,
                                        const QueryOptions& query_options);

  // Materializes every ExtVP reduction the pattern's correlations could
  // use (lazy mode pre-pass; recurses into OPTIONAL/UNION/subqueries).
  Status LazyMaterializeFor(const sparql::GraphPattern& pattern);

  // Once-per-table build of one lazy ExtVP reduction: concurrent
  // queries needing the same (corr, p1, p2) pair block until the first
  // builder finishes instead of computing it twice.
  Status EnsureExtVpPair(Correlation corr, rdf::TermId p1, rdf::TermId p2);

  // CONSTRUCT / DESCRIBE execution (produces graph_ntriples).
  StatusOr<QueryResult> ExecuteGraphForm(const sparql::Query& query,
                                         const CompilerOptions& options,
                                         const QueryOptions& query_options);

  // Writes the query's Chrome trace to S2RdfOptions::trace_dir (no-op
  // when unset).
  Status MaybeDumpTrace(const engine::QueryProfile& profile,
                        std::string_view query_text);

  // All fields below are either set once during Create/Open and then
  // read-only (graph topology, thresholds, flags), internally
  // synchronized (catalog, dictionary), or guarded here (lazy build
  // bookkeeping). Per-query state lives in local ExecContexts.
  rdf::Graph graph_;
  storage::Catalog catalog_;
  storage::Env* env_;
  int num_partitions_;
  bool parallel_execution_ = false;
  bool lazy_extvp_ = false;
  double sf_threshold_ = 1.0;
  // Trace-file dump (S2RdfOptions::trace_dir); the sequence number keys
  // the filenames without consulting a wall clock.
  std::string trace_dir_;
  storage::Env* trace_env_ = nullptr;
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> lazy_pairs_computed_{0};
  LoadStats load_stats_;
  storage::RecoveryReport recovery_report_;
  std::unique_ptr<ExtVpBitmapStore> bitmap_store_;

  // Serializes Ingest/RefreshStaleExtVp calls (queries run unlocked —
  // they pin the prior generation's tables). Ordered before lazy_mu_:
  // ingest-side refresh may trigger lazy materialization, never the
  // reverse (enforced globally by the s2rdf_lint lock-order pass).
  Mutex ingest_mu_ S2RDF_ACQUIRED_BEFORE(lazy_mu_);

  // Guards the lazy-ExtVP in-flight set; lazy_cv_ wakes waiters when a
  // build completes.
  Mutex lazy_mu_;
  CondVar lazy_cv_;
  std::set<std::string> lazy_in_flight_ S2RDF_GUARDED_BY(lazy_mu_);
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_S2RDF_H_
