#ifndef S2RDF_CORE_OPTIMIZER_H_
#define S2RDF_CORE_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/cost_model.h"
#include "core/table_selection.h"
#include "sparql/ast.h"

// The Optimize stage of the compile pipeline (Analyze -> Optimize ->
// Plan, see core/compiler.h). The compiler's Analyze produces a
// BgpAnalysis — per-pattern table choices with cardinality estimates
// plus the join graph — and a pluggable Optimizer turns it into a
// JoinTree the Plan stage lowers to engine::PlanNodes.
//
// Two implementations behind the one interface:
//
//   PaperOptimizer      Algorithm 4 of the paper verbatim: order by
//                       bound-term count, then by selected-table size,
//                       never cross-joining when avoidable; left-deep
//                       hash joins. This is the default and reproduces
//                       the pre-redesign planner exactly.
//   CostBasedOptimizer  Dynamic-programming join enumeration (bushy
//                       trees allowed) over the SF-derived cardinality
//                       estimates for BGPs up to dp_pattern_cap
//                       patterns, greedy min-cardinality construction
//                       above that; per-join hash vs sort-merge choice;
//                       semi-join reduction of large scans ahead of
//                       expensive joins.
//
// Both are deterministic: the same analysis always yields the same
// tree. Both respect the ExtVP -> VP -> TT degradation path because
// they consume whatever TableChoice Analyze made — and the cost-based
// semi-join pass effectively rebuilds quarantined or unmaterialized
// ExtVP reductions at runtime.

namespace s2rdf::core {

enum class OptimizerMode {
  kPaper,  // The paper's heuristic (Algorithms 3/4).
  kCost,   // Cost-based over SF statistics.
};

const char* OptimizerModeName(OptimizerMode mode);
StatusOr<OptimizerMode> ParseOptimizerMode(std::string_view name);

struct OptimizerOptions {
  OptimizerMode mode = OptimizerMode::kPaper;
  // Paper mode: Algorithm 4 ordering (true) vs Algorithm 3 pattern
  // order (false).
  bool reorder_joins = true;
  // Cost mode: exact DP join enumeration for BGPs up to this many
  // patterns; greedy construction above. Capped at 16 internally.
  int dp_pattern_cap = 10;
  // Cost mode: allow semi-join reduction of large, poorly-reduced scans
  // ahead of expensive joins.
  bool enable_semi_join = true;
  // Scans below this estimated size are never semi-join-reduced (the
  // reduction would cost more than it saves). Tests lower this to 0.
  uint64_t semi_join_min_rows = 1024;
};

// One triple pattern after Analyze: its Algorithm-1 table choice plus
// the estimator's view of the scan.
struct PatternInfo {
  TableChoice choice;
  double scan_rows = 0.0;  // Estimated scan output rows.
  double scan_cost = 0.0;
  int bound_count = 0;     // Non-variable positions (Algorithm 4 key).
  std::vector<std::string> variables;  // In s/p/o order, deduplicated.
};

// One edge of the join graph: patterns a < b share >= 1 variable.
struct JoinEdge {
  size_t a = 0;
  size_t b = 0;
  int shared_vars = 0;
  std::string shared_var;  // First shared variable, in a's s/p/o order.
  // est(a JOIN b) / (rows_a * rows_b), clamped to (0, 1].
  double selectivity = 1.0;
  // Fraction of each side's scan surviving the join (semi-join sizing).
  double keep_a = 1.0;
  double keep_b = 1.0;
};

struct BgpAnalysis {
  std::vector<sparql::TriplePattern> bgp;
  std::vector<PatternInfo> patterns;  // Parallel to `bgp`.
  std::vector<JoinEdge> edges;        // a < b, lexicographically sorted.
  // Statistics proved the BGP empty (some pattern's table has zero
  // rows); `patterns` stops at the pattern that proved it.
  bool empty_result = false;
};

// Binary join tree over the analyzed patterns. Leaves reference a
// pattern index; inner nodes join their children. Estimates are
// advisory annotations carried into the plan for EXPLAIN.
struct JoinTree {
  int pattern = -1;  // >= 0 for leaves.
  std::unique_ptr<JoinTree> left;
  std::unique_ptr<JoinTree> right;
  JoinAlgoChoice algo = JoinAlgoChoice::kHash;
  // Leaf only: pattern indices whose single-column semi-join should
  // reduce this scan before it joins (smallest keep fraction first).
  std::vector<int> reducers;
  double est_rows = 0.0;
  double est_cost = 0.0;

  bool is_leaf() const { return pattern >= 0; }
};
using JoinTreePtr = std::unique_ptr<JoinTree>;

// The edge between patterns a and b, if they share a variable; nullptr
// otherwise. Order-insensitive.
const JoinEdge* FindEdge(const BgpAnalysis& analysis, size_t a, size_t b);

// Estimated rows of joining the patterns in `mask` (bit i = pattern i):
// product of member scan estimates times the selectivity of every
// internal edge — the independence assumption. Plan-shape-invariant,
// which is what makes the DP's subproblem sharing sound.
double EstimateSubsetRows(const BgpAnalysis& analysis, uint64_t mask);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // "paper" or "cost"; recorded in query results and /debug/queries.
  virtual const char* name() const = 0;
  // Deterministically picks a join tree for the analyzed BGP. The
  // analysis must have >= 1 pattern and no empty_result choices.
  virtual StatusOr<JoinTreePtr> Optimize(const BgpAnalysis& analysis) const = 0;

  static std::unique_ptr<Optimizer> Create(const OptimizerOptions& options);
};

class PaperOptimizer : public Optimizer {
 public:
  explicit PaperOptimizer(const OptimizerOptions& options)
      : options_(options) {}
  const char* name() const override { return "paper"; }
  StatusOr<JoinTreePtr> Optimize(const BgpAnalysis& analysis) const override;

 private:
  OptimizerOptions options_;
};

class CostBasedOptimizer : public Optimizer {
 public:
  explicit CostBasedOptimizer(const OptimizerOptions& options)
      : options_(options) {}
  const char* name() const override { return "cost"; }
  StatusOr<JoinTreePtr> Optimize(const BgpAnalysis& analysis) const override;

 private:
  OptimizerOptions options_;
  CostModel cost_model_;
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_OPTIMIZER_H_
