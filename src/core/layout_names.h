#ifndef S2RDF_CORE_LAYOUT_NAMES_H_
#define S2RDF_CORE_LAYOUT_NAMES_H_

#include <string>

#include "rdf/dictionary.h"

// Catalog naming scheme for the relational layouts of Sec. 4/5:
//   triples                       — the triples table TT(s, p, o)
//   vp_<pred>_<id>                — VP_p(s, o)
//   extvp_ss_<p1>_<id1>__<p2>_<id2> — ExtVP^SS_p1|p2, likewise os / so
//   pt / pt_aux_<pred>_<id>       — property table + auxiliary tables
// The human-readable predicate fragment makes the generated SQL of the
// examples legible; the numeric id guarantees uniqueness.

namespace s2rdf::core {

// The three precomputed correlation directions (OO is intentionally not
// precomputed — Sec. 5.2 discusses why).
enum class Correlation { kSS, kOS, kSO };

inline const char* CorrelationName(Correlation c) {
  switch (c) {
    case Correlation::kSS:
      return "ss";
    case Correlation::kOS:
      return "os";
    case Correlation::kSO:
      return "so";
  }
  return "??";
}

// Short readable fragment of a predicate term ("<http://x/ns#follows>"
// -> "follows"), sanitized to [a-z0-9_], max 24 chars.
std::string PredicateFragment(const std::string& canonical_term);

std::string TriplesTableName();
std::string VpTableName(const rdf::Dictionary& dict, rdf::TermId predicate);

// Inverse naming map used for graceful degradation: the base VP table
// that is a superset of the given ExtVP table ("extvp_ss_a_1__b_2" ->
// "vp_a_1"). Pure string transform (no dictionary), so the storage
// layer's fallback hook can use it. Returns "" for non-ExtVP names.
std::string VpTableNameForExtVp(const std::string& extvp_name);
std::string ExtVpTableName(const rdf::Dictionary& dict, Correlation corr,
                           rdf::TermId p1, rdf::TermId p2);
std::string PropertyTableName();
std::string PropertyAuxTableName(const rdf::Dictionary& dict,
                                 rdf::TermId predicate);

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_LAYOUT_NAMES_H_
