#ifndef S2RDF_CORE_LAYOUT_NAMES_H_
#define S2RDF_CORE_LAYOUT_NAMES_H_

#include <string>

#include "rdf/dictionary.h"

// Catalog naming scheme for the relational layouts of Sec. 4/5:
//   triples                       — the triples table TT(s, p, o)
//   vp_<pred>_<id>                — VP_p(s, o)
//   extvp_ss_<p1>_<id1>__<p2>_<id2> — ExtVP^SS_p1|p2, likewise os / so
//   pt / pt_aux_<pred>_<id>       — property table + auxiliary tables
// The human-readable predicate fragment makes the generated SQL of the
// examples legible; the numeric id guarantees uniqueness.

namespace s2rdf::core {

// The three precomputed correlation directions (OO is intentionally not
// precomputed — Sec. 5.2 discusses why).
enum class Correlation { kSS, kOS, kSO };

inline const char* CorrelationName(Correlation c) {
  switch (c) {
    case Correlation::kSS:
      return "ss";
    case Correlation::kOS:
      return "os";
    case Correlation::kSO:
      return "so";
  }
  return "??";
}

// Short readable fragment of a predicate term ("<http://x/ns#follows>"
// -> "follows"), sanitized to [a-z0-9_], max 24 chars.
std::string PredicateFragment(const std::string& canonical_term);

std::string TriplesTableName();
std::string VpTableName(const rdf::Dictionary& dict, rdf::TermId predicate);
std::string ExtVpTableName(const rdf::Dictionary& dict, Correlation corr,
                           rdf::TermId p1, rdf::TermId p2);
std::string PropertyTableName();
std::string PropertyAuxTableName(const rdf::Dictionary& dict,
                                 rdf::TermId predicate);

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_LAYOUT_NAMES_H_
