#ifndef S2RDF_CORE_EXTVP_BITMAP_H_
#define S2RDF_CORE_EXTVP_BITMAP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bitmap.h"
#include "common/status.h"
#include "core/layout_names.h"
#include "core/layouts.h"
#include "rdf/graph.h"

// Bit-vector representation of ExtVP — the paper's future work (Sec. 8):
// instead of materializing each semi-join reduction ExtVP_corr_p1|p2 as
// its own (s, o) table, store one bitmap over the rows of VP_p1 marking
// the surviving rows. This shrinks the ExtVP overhead from O(tuples) to
// O(bits) and, because bitmaps over the same VP table compose with
// bitwise AND, enables the paper's proposed "unification strategy": a
// triple pattern with several correlations is answered by the
// *intersection* of all of them, which can be strictly more selective
// than the single best ExtVP table Algorithm 1 picks.
//
// Bitmaps are indexed by the row order of the VP layout built from the
// same graph (layouts.cc builds both from the same deduplicated row
// stream), so a bitmap can filter the catalog's VP table directly.

namespace s2rdf::core {

class ExtVpBitmapStore {
 public:
  // Builds bitmaps for every combination with 0 < SF < 1 (and SF below
  // `options.sf_threshold`). Combinations with SF = 1 are represented
  // implicitly (the full VP table); empty combinations are recorded so
  // the statistics shortcut still works.
  static StatusOr<std::unique_ptr<ExtVpBitmapStore>> Build(
      const rdf::Graph& graph, const ExtVpOptions& options);

  // The bitmap for (corr, p1, p2); nullptr when not stored (empty,
  // SF = 1, pruned by threshold, or unknown pair).
  const Bitmap* Get(Correlation corr, rdf::TermId p1, rdf::TermId p2) const;

  // True when the combination is known-empty (SF = 0): every join using
  // this correlation has an empty result.
  bool IsEmpty(Correlation corr, rdf::TermId p1, rdf::TermId p2) const;

  // Selectivity factor of the combination: bits set / |VP_p1|, 1.0 when
  // not stored but non-empty, 0.0 when empty.
  double Sf(Correlation corr, rdf::TermId p1, rdf::TermId p2) const;

  // Number of rows of VP_p (bitmap domain size); 0 for unknown p.
  uint64_t VpRows(rdf::TermId p) const;

  // Storage accounting.
  uint64_t TotalBitmapBytes() const;
  size_t NumBitmaps() const { return bitmaps_.size(); }

  // Which correlation directions were built.
  bool HasCorrelation(Correlation corr) const {
    return built_[static_cast<int>(corr)];
  }

 private:
  ExtVpBitmapStore() = default;

  static uint64_t Key(Correlation corr, rdf::TermId p1, rdf::TermId p2) {
    return (static_cast<uint64_t>(corr) << 62) |
           (static_cast<uint64_t>(p1) << 31) | p2;
  }

  std::unordered_map<uint64_t, Bitmap> bitmaps_;
  // Non-empty combinations (superset of bitmaps_; includes SF = 1 and
  // threshold-pruned pairs). Value: SF.
  std::unordered_map<uint64_t, double> known_sf_;
  std::unordered_map<rdf::TermId, uint64_t> vp_rows_;
  bool built_[3] = {false, false, false};
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_EXTVP_BITMAP_H_
