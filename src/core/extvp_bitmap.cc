#include "core/extvp_bitmap.h"

#include <unordered_map>
#include <vector>

namespace s2rdf::core {

namespace {
using rdf::TermId;
}  // namespace

StatusOr<std::unique_ptr<ExtVpBitmapStore>> ExtVpBitmapStore::Build(
    const rdf::Graph& graph, const ExtVpOptions& options) {
  auto store = std::unique_ptr<ExtVpBitmapStore>(new ExtVpBitmapStore());
  store->built_[static_cast<int>(Correlation::kSS)] = options.build_ss;
  store->built_[static_cast<int>(Correlation::kOS)] = options.build_os;
  store->built_[static_cast<int>(Correlation::kSO)] = options.build_so;

  VpRowData vp = CollectVpRows(graph);
  const size_t k = vp.predicates.size();
  for (TermId p : vp.predicates) {
    store->vp_rows_[p] = vp.rows[p].size();
  }

  // term -> distinct predicate indices with the term as subject/object
  // (same single-pass scheme as the table builder in layouts.cc).
  std::unordered_map<TermId, std::vector<uint32_t>> subject_preds;
  std::unordered_map<TermId, std::vector<uint32_t>> object_preds;
  for (size_t i = 0; i < k; ++i) {
    for (const auto& [s, o] : vp.rows[vp.predicates[i]]) {
      auto& sp = subject_preds[s];
      if (sp.empty() || sp.back() != i) sp.push_back(static_cast<uint32_t>(i));
      auto& op = object_preds[o];
      if (op.empty() || op.back() != i) op.push_back(static_cast<uint32_t>(i));
    }
  }

  // One pass: set bit `row` of bitmap (corr, p1, p2) whenever row `row`
  // of VP_p1 survives the semi-join against VP_p2.
  auto bitmap_for = [&](Correlation corr, TermId p1, TermId p2,
                        size_t domain) -> Bitmap& {
    uint64_t key = Key(corr, p1, p2);
    auto it = store->bitmaps_.find(key);
    if (it == store->bitmaps_.end()) {
      it = store->bitmaps_.emplace(key, Bitmap(domain)).first;
    }
    return it->second;
  };

  for (size_t i1 = 0; i1 < k; ++i1) {
    TermId p1 = vp.predicates[i1];
    const auto& rows = vp.rows[p1];
    for (size_t row = 0; row < rows.size(); ++row) {
      const auto& [s, o] = rows[row];
      if (options.build_ss) {
        for (uint32_t i2 : subject_preds[s]) {
          if (i2 == i1) continue;
          bitmap_for(Correlation::kSS, p1, vp.predicates[i2], rows.size())
              .Set(row);
        }
      }
      if (options.build_os) {
        auto it = subject_preds.find(o);
        if (it != subject_preds.end()) {
          for (uint32_t i2 : it->second) {
            bitmap_for(Correlation::kOS, p1, vp.predicates[i2], rows.size())
                .Set(row);
          }
        }
      }
      if (options.build_so) {
        auto it = object_preds.find(s);
        if (it != object_preds.end()) {
          for (uint32_t i2 : it->second) {
            bitmap_for(Correlation::kSO, p1, vp.predicates[i2], rows.size())
                .Set(row);
          }
        }
      }
    }
  }

  // Post-pass: record SFs; drop bitmaps with SF = 1 (the VP table
  // itself) and those pruned by the threshold. Note that unlike the
  // table representation, a pruned bitmap costs nothing at query time —
  // we still drop it to honor the configured storage budget.
  for (auto it = store->bitmaps_.begin(); it != store->bitmaps_.end();) {
    uint64_t set = it->second.CountSetBits();
    double sf =
        static_cast<double>(set) / static_cast<double>(it->second.size_bits());
    store->known_sf_[it->first] = sf;
    if (set == it->second.size_bits() || sf >= options.sf_threshold) {
      it = store->bitmaps_.erase(it);
    } else {
      ++it;
    }
  }
  return store;
}

const Bitmap* ExtVpBitmapStore::Get(Correlation corr, TermId p1,
                                    TermId p2) const {
  auto it = bitmaps_.find(Key(corr, p1, p2));
  return it == bitmaps_.end() ? nullptr : &it->second;
}

bool ExtVpBitmapStore::IsEmpty(Correlation corr, TermId p1,
                               TermId p2) const {
  if (!built_[static_cast<int>(corr)]) return false;
  if (corr == Correlation::kSS && p1 == p2) return false;
  // Both predicates must exist for the combination to be meaningful;
  // unknown predicates are handled by the dictionary check upstream.
  return !known_sf_.contains(Key(corr, p1, p2));
}

double ExtVpBitmapStore::Sf(Correlation corr, TermId p1, TermId p2) const {
  auto it = known_sf_.find(Key(corr, p1, p2));
  if (it == known_sf_.end()) return IsEmpty(corr, p1, p2) ? 0.0 : 1.0;
  return it->second;
}

uint64_t ExtVpBitmapStore::VpRows(TermId p) const {
  auto it = vp_rows_.find(p);
  return it == vp_rows_.end() ? 0 : it->second;
}

uint64_t ExtVpBitmapStore::TotalBitmapBytes() const {
  uint64_t total = 0;
  for (const auto& [key, bitmap] : bitmaps_) total += bitmap.ByteSize();
  return total;
}

}  // namespace s2rdf::core
