#include "core/s2rdf.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <set>

#include "common/file_util.h"
#include "common/log.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "core/ingest.h"
#include "engine/operators.h"
#include "sparql/parser.h"

namespace s2rdf::core {

namespace {

// Seeds an ExecContext with the per-query controls of `options`. The
// deadline covers the whole request (parse + compile + execute), so it
// is computed once up front.
void InitContext(const QueryOptions& options, int num_partitions,
                 bool parallel_execution, MonotonicTime start,
                 engine::ExecContext* ctx) {
  ctx->num_partitions = num_partitions;
  ctx->parallel_execution = parallel_execution;
  ctx->morsel_rows = static_cast<size_t>(options.morsel_rows);
  ctx->collect_profile = options.collect_profile;
  ctx->profile_origin = start;
  ctx->cancel_flag = options.cancel;
  ctx->trace_id = options.trace_id;
  if (options.timeout_ms > 0) {
    ctx->has_deadline = true;
    ctx->deadline = start + std::chrono::milliseconds(options.timeout_ms);
  }
}

// --- Checksummed dictionary persistence ---------------------------------
//
// The dictionary is the one artifact the tables cannot reconstruct (they
// store term ids only), so its file gets the same protection a table
// file has: a checksummed envelope, a generation-suffixed name written
// BEFORE the manifest flip, and a read-back verification so a silently
// corrupted write can never be referenced by a committed generation.

constexpr char kDictMagic[] = "S2DICT1\n";

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string WrapDictionaryBlob(const std::string& payload) {
  char header[32];
  std::snprintf(header, sizeof(header), "%016llx\n",
                static_cast<unsigned long long>(Fnv1a64(payload)));
  return std::string(kDictMagic) + header + payload;
}

StatusOr<std::string> UnwrapDictionaryBlob(const std::string& blob) {
  constexpr size_t kMagicLen = sizeof(kDictMagic) - 1;
  if (blob.size() < kMagicLen + 17 ||
      blob.compare(0, kMagicLen, kDictMagic) != 0) {
    // Legacy (pre-checksum) dictionary file: the blob is the payload.
    return blob;
  }
  if (blob[kMagicLen + 16] != '\n') {
    return InvalidArgumentError("dictionary header malformed");
  }
  std::string payload = blob.substr(kMagicLen + 17);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(payload)));
  if (blob.compare(kMagicLen, 16, expected) != 0) {
    return InvalidArgumentError("dictionary checksum mismatch");
  }
  return payload;
}

// "dictionary.bin" for the initial build, "dictionary@<g>.bin" for the
// copy an ingest batch persisted just before committing generation g.
std::string DictionaryFileName(uint64_t gen) {
  if (gen <= 1) return "dictionary.bin";
  return "dictionary@" + std::to_string(gen) + ".bin";
}

// True (and sets *gen) for "dictionary@<g>.bin" names.
bool ParseDictionaryFileName(const std::string& file, uint64_t* gen) {
  if (!StartsWith(file, "dictionary@") || !EndsWith(file, ".bin")) {
    return false;
  }
  const std::string digits = file.substr(11, file.size() - 11 - 4);
  if (digits.empty()) return false;
  uint64_t g = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  *gen = g;
  return true;
}

// Loads the newest dictionary at or below `generation` — exact match
// first, then older suffixed copies, then the base "dictionary.bin".
// Generations with no suffixed file (refresh-only commits, the initial
// build) add no terms, so an older copy is the correct content. Files
// ABOVE the recovered generation are debris of an ingest that never
// committed (harmless supersets); they are swept here.
Status LoadDictionaryForGeneration(storage::Env* env, const std::string& dir,
                                   uint64_t generation,
                                   rdf::Dictionary* dict) {
  std::vector<uint64_t> gens;
  if (StatusOr<std::vector<std::string>> files = env->ListDir(dir);
      files.ok()) {
    for (const std::string& file : *files) {
      uint64_t g = 0;
      if (!ParseDictionaryFileName(file, &g)) continue;
      if (g > generation) {
        env->RemoveFile(dir + "/" + file);  // Uncommitted-batch debris.
      } else {
        gens.push_back(g);
      }
    }
  }
  std::sort(gens.begin(), gens.end(), std::greater<uint64_t>());
  std::vector<std::string> candidates;
  for (uint64_t g : gens) candidates.push_back(DictionaryFileName(g));
  candidates.push_back("dictionary.bin");
  Status last = NotFoundError("no dictionary file in " + dir);
  for (const std::string& file : candidates) {
    std::string blob;
    if (Status s = env->ReadFile(dir + "/" + file, &blob); !s.ok()) {
      last = std::move(s);
      continue;
    }
    StatusOr<std::string> payload = UnwrapDictionaryBlob(blob);
    if (!payload.ok()) {
      last = payload.status();
      continue;
    }
    StatusOr<rdf::Dictionary> parsed = rdf::Dictionary::Deserialize(*payload);
    if (!parsed.ok()) {
      last = parsed.status();
      continue;
    }
    *dict = std::move(*parsed);
    return Status::Ok();
  }
  return last;
}

}  // namespace

StatusOr<std::unique_ptr<S2Rdf>> S2Rdf::Create(rdf::Graph graph,
                                               const S2RdfOptions& options) {
  auto db = std::unique_ptr<S2Rdf>(
      new S2Rdf(std::move(graph), options.storage_dir,
                options.num_partitions, options.parallel_execution,
                options.env));
  // ExtVP tables that fail their load-time checksum degrade to the base
  // VP table (a superset with the same schema), keeping results intact.
  db->catalog_.SetDegradedFallback(VpTableNameForExtVp);
  db->trace_dir_ = options.trace_dir;
  db->trace_env_ = options.env;

  auto start = MonotonicNow();
  if (options.build_triples_table) {
    S2RDF_RETURN_IF_ERROR(BuildTriplesTable(db->graph_, &db->catalog_));
  }
  S2RDF_RETURN_IF_ERROR(BuildVpLayout(db->graph_, &db->catalog_));
  db->load_stats_.vp_seconds = SecondsSince(start);

  db->sf_threshold_ = options.sf_threshold;
  if (options.lazy_extvp) {
    // "Pay as you go": no precomputation; only register the correlation
    // markers so Algorithm 1 consults ExtVP statistics.
    db->lazy_extvp_ = true;
    db->catalog_.PutStatsOnly("meta_extvp_ss", 1, 1.0);
    db->catalog_.PutStatsOnly("meta_extvp_os", 1, 1.0);
    db->catalog_.PutStatsOnly("meta_extvp_so", 1, 1.0);
  } else if (options.build_extvp) {
    ExtVpOptions extvp = options.extvp;
    extvp.sf_threshold = options.sf_threshold;
    S2RDF_ASSIGN_OR_RETURN(
        db->load_stats_.extvp_stats,
        BuildExtVpLayout(db->graph_, extvp, &db->catalog_));
    db->load_stats_.extvp_seconds =
        db->load_stats_.extvp_stats.build_seconds;
  }
  if (options.build_extvp_bitmaps) {
    ExtVpOptions extvp = options.extvp;
    extvp.sf_threshold = options.sf_threshold;
    S2RDF_ASSIGN_OR_RETURN(db->bitmap_store_,
                           ExtVpBitmapStore::Build(db->graph_, extvp));
  }
  // Persist the build parameters ingest needs to reproduce the eager
  // builder's materialization decisions on a reopened store. The SF
  // threshold rides in the entry's selectivity field.
  db->catalog_.PutStatsOnly("meta_sf_threshold", 1, options.sf_threshold);
  if (options.lazy_extvp) {
    db->catalog_.PutStatsOnly("meta_lazy_extvp", 1, 1.0);
  }
  if (!options.storage_dir.empty()) {
    S2RDF_RETURN_IF_ERROR(db->catalog_.SaveManifest());
    storage::Env* env =
        options.env != nullptr ? options.env : storage::Env::Default();
    S2RDF_RETURN_IF_ERROR(env->WriteFileAtomic(
        options.storage_dir + "/dictionary.bin",
        WrapDictionaryBlob(db->graph_.dictionary().Serialize())));
  }
  db->catalog_.SetMemoryBudget(options.memory_budget_bytes);
  db->catalog_.EvictToBudget();
  return db;
}

StatusOr<std::unique_ptr<S2Rdf>> S2Rdf::Open(const std::string& storage_dir,
                                             int num_partitions,
                                             storage::Env* env) {
  if (storage_dir.empty()) {
    return InvalidArgumentError("Open requires a storage directory");
  }
  if (env == nullptr) env = storage::Env::Default();
  // The reopened instance carries the dictionary but no triple list;
  // queries execute against the persisted tables.
  auto db = std::unique_ptr<S2Rdf>(new S2Rdf(
      rdf::Graph(), storage_dir, num_partitions, false, env));
  // Startup recovery: verify the manifest chain and every table's
  // checksums, quarantine corruption, sweep crash debris. The
  // dictionary loads afterwards — which copy is current depends on the
  // generation recovery landed on.
  S2RDF_ASSIGN_OR_RETURN(db->recovery_report_, db->catalog_.Recover());
  S2RDF_RETURN_IF_ERROR(LoadDictionaryForGeneration(
      env, storage_dir, db->recovery_report_.generation,
      &db->graph_.dictionary()));
  db->catalog_.SetDegradedFallback(VpTableNameForExtVp);
  if (const storage::TableStats* meta =
          db->catalog_.GetStats("meta_sf_threshold")) {
    db->sf_threshold_ = meta->selectivity;
  }
  db->lazy_extvp_ = db->catalog_.Has("meta_lazy_extvp");
  return db;
}

StatusOr<storage::IngestResult> S2Rdf::Ingest(
    const storage::IngestBatch& batch) {
  MutexLock lock(&ingest_mu_);
  rdf::Dictionary& dict = graph_.dictionary();
  if (!catalog_.dir().empty()) {
    // Persist the dictionary (with the batch's new terms interned)
    // BEFORE the table commit, under the next generation's name: a
    // crash between the two leaves the current generation's dictionary
    // untouched and the new file as harmless superset debris that Open
    // sweeps.
    for (const storage::IngestTriple& t : batch.triples) {
      dict.Encode(t.subject);
      dict.Encode(t.predicate);
      dict.Encode(t.object);
    }
    const uint64_t next_gen = catalog_.generation() + 1;
    const std::string path =
        catalog_.dir() + "/" + DictionaryFileName(next_gen);
    const std::string payload = dict.Serialize();
    S2RDF_RETURN_IF_ERROR(
        env_->WriteFileAtomic(path, WrapDictionaryBlob(payload)));
    // Read back and verify before anything can reference the file: a
    // silently corrupted write (bit rot) must fail the batch while the
    // previous generation — and its dictionary — is still intact.
    std::string readback;
    S2RDF_RETURN_IF_ERROR(catalog_.ReadFileRetrying(path, &readback));
    StatusOr<std::string> verified = UnwrapDictionaryBlob(readback);
    if (!verified.ok() || *verified != payload) {
      env_->RemoveFile(path);
      return InvalidArgumentError(
          "dictionary write failed read-back verification: " + path);
    }
  }
  IngestConfig config;
  config.sf_threshold = sf_threshold_;
  config.lazy_extvp = lazy_extvp_;
  StatusOr<storage::IngestResult> result =
      ApplyIngestBatch(batch, config, &dict, &catalog_);
  if (result.ok() && result->triples_added > 0 && !catalog_.dir().empty()) {
    // Prune dictionary copies older than the previous generation
    // (mirrors manifest pruning; the base "dictionary.bin" stays as the
    // legacy anchor).
    if (StatusOr<std::vector<std::string>> files =
            env_->ListDir(catalog_.dir());
        files.ok()) {
      for (const std::string& file : *files) {
        uint64_t g = 0;
        if (ParseDictionaryFileName(file, &g) && g + 1 < result->generation) {
          env_->RemoveFile(catalog_.dir() + "/" + file);
        }
      }
    }
  }
  if (result.ok()) {
    LogEvent(LogLevel::kInfo, "ingest_commit",
             {{"triples_in_batch", result->triples_in_batch},
              {"triples_added", result->triples_added},
              {"generation", result->generation},
              {"vp_tables_updated", result->vp_tables_updated},
              {"extvp_tables_updated", result->extvp_tables_updated},
              {"stale_sources_marked", result->stale_sources_marked},
              {"millis", result->millis}});
  } else {
    LogEvent(LogLevel::kError, "ingest_failed",
             {{"status", result.status().ToString()}});
  }
  return result;
}

StatusOr<uint64_t> S2Rdf::RefreshStaleExtVp() {
  MutexLock lock(&ingest_mu_);
  IngestConfig config;
  config.sf_threshold = sf_threshold_;
  config.lazy_extvp = lazy_extvp_;
  return core::RefreshStaleExtVp(config, graph_.dictionary(), &catalog_);
}

StatusOr<QueryResult> S2Rdf::Execute(const QueryRequest& request) {
  CompilerOptions compiler_options;
  compiler_options.layout = request.options.layout;
  compiler_options.collect_profile = request.options.collect_profile;
  compiler_options.optimizer = request.options.optimizer;
  return ExecuteInternal(request.query, compiler_options, request.options);
}

StatusOr<QueryResult> S2Rdf::Execute(std::string_view sparql_text,
                                     Layout layout) {
  CompilerOptions compiler_options;
  compiler_options.layout = layout;
  QueryOptions query_options;
  query_options.layout = layout;
  return ExecuteInternal(sparql_text, compiler_options, query_options);
}

StatusOr<QueryResult> S2Rdf::ExecuteWithOptions(
    std::string_view sparql_text, const CompilerOptions& options) {
  QueryOptions query_options;
  query_options.layout = options.layout;
  query_options.collect_profile = options.collect_profile;
  return ExecuteInternal(sparql_text, options, query_options);
}

StatusOr<QueryResult> S2Rdf::ExecuteInternal(
    std::string_view sparql_text, const CompilerOptions& compiler_options,
    const QueryOptions& query_options) {
  auto start = MonotonicNow();
  engine::ExecContext ctx;
  InitContext(query_options, num_partitions_, parallel_execution_, start,
              &ctx);
  engine::TaskSpanSink task_spans;
  if (ctx.collect_profile) ctx.task_spans = &task_spans;

  S2RDF_ASSIGN_OR_RETURN(sparql::Query query,
                         sparql::ParseQuery(sparql_text));
  const double parse_ms = MillisSince(start);
  if (ctx.CheckInterrupt()) return ctx.interrupt_status;
  if (lazy_extvp_ && compiler_options.layout == Layout::kExtVp) {
    S2RDF_RETURN_IF_ERROR(LazyMaterializeFor(query.where));
    if (ctx.CheckInterrupt()) return ctx.interrupt_status;
  }
  CompilerOptions effective = compiler_options;
  if (effective.layout == Layout::kExtVpBitmap) {
    if (bitmap_store_ == nullptr) {
      return FailedPreconditionError(
          "Layout::kExtVpBitmap requires S2RdfOptions.build_extvp_bitmaps");
    }
    effective.bitmap_store = bitmap_store_.get();
  }
  if (query.form == sparql::QueryForm::kConstruct ||
      query.form == sparql::QueryForm::kDescribe) {
    if (query_options.explain_plan) {
      return InvalidArgumentError(
          "explain=plan is not supported for CONSTRUCT/DESCRIBE queries");
    }
    return ExecuteGraphForm(query, effective, query_options);
  }
  QueryCompiler compiler(&catalog_, &graph_.dictionary(), effective);
  S2RDF_ASSIGN_OR_RETURN(engine::PlanPtr plan, compiler.Compile(query));
  const double compile_ms = MillisSince(start) - parse_ms;
  if (ctx.CheckInterrupt()) return ctx.interrupt_status;

  if (query_options.explain_plan) {
    // EXPLAIN: stop after the compile stage; the plan with its
    // estimates is the result.
    QueryResult result;
    result.millis = MillisSince(start);
    result.parse_ms = parse_ms;
    result.compile_ms = compile_ms;
    result.is_ask = query.is_ask;
    result.sql = plan->ToSql();
    result.plan = plan->ToString();
    result.optimizer_mode = compiler.optimizer().name();
    result.plan_fingerprint = engine::PlanFingerprint(*plan);
    result.trace_id = query_options.trace_id;
    return result;
  }

  // The provider pins every table it resolves until `provider` is
  // destroyed, so concurrent eviction cannot free a table mid-scan.
  auto exec_start = MonotonicNow();
  S2RDF_ASSIGN_OR_RETURN(
      engine::Table table,
      engine::ExecutePlan(*plan, catalog_.AsProvider(), &graph_.dictionary(),
                          &ctx));
  const double exec_ms = MillisSince(exec_start);
  ctx.metrics.output_tuples = table.NumRows();

  QueryResult result;
  // Timing covers parse + compile + execute; the debug renderings below
  // are excluded (they are inspection aids, not part of the query path).
  result.millis = MillisSince(start);
  result.parse_ms = parse_ms;
  result.compile_ms = compile_ms;
  result.exec_ms = exec_ms;
  result.is_ask = query.is_ask;
  result.ask_result = query.is_ask && table.NumRows() > 0;
  if (query_options.max_result_rows > 0 &&
      table.NumRows() > query_options.max_result_rows) {
    table = engine::Slice(table, 0, query_options.max_result_rows);
    result.truncated = true;
  }
  result.trace_id = query_options.trace_id;
  if (effective.collect_profile) {
    result.profile_data.trace_id = query_options.trace_id;
    result.profile_data.operators = std::move(ctx.profile);
    result.profile_data.tasks = task_spans.Take();
    result.profile_data.parse_ms = parse_ms;
    result.profile_data.compile_ms = compile_ms;
    result.profile_data.exec_ms = exec_ms;
    result.profile_data.total_ms = result.millis;
    result.profile_data.totals = ctx.metrics;
    result.profile = engine::RenderProfileText(result.profile_data);
    S2RDF_RETURN_IF_ERROR(MaybeDumpTrace(result.profile_data, sparql_text));
  }
  result.sql = plan->ToSql();
  result.plan = plan->ToString();
  result.optimizer_mode = compiler.optimizer().name();
  result.plan_fingerprint = engine::PlanFingerprint(*plan);
  result.table = std::move(table);
  result.metrics = ctx.metrics;
  // Enforce the memory budget between queries; in-flight queries keep
  // their tables alive through provider pins.
  catalog_.EvictToBudget();
  return result;
}

Status S2Rdf::MaybeDumpTrace(const engine::QueryProfile& profile,
                             std::string_view query_text) {
  if (trace_dir_.empty()) return Status::Ok();
  storage::Env* env = trace_env_ != nullptr ? trace_env_ : storage::Env::Default();
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  char name[32];
  std::snprintf(name, sizeof(name), "trace-%06llu.json",
                static_cast<unsigned long long>(seq));
  S2RDF_RETURN_IF_ERROR(env->MakeDirs(trace_dir_));
  return env->WriteFileAtomic(
      trace_dir_ + "/" + name,
      engine::RenderTraceJson(profile, std::string(query_text)));
}

StatusOr<QueryResult> S2Rdf::ExecuteGraphForm(
    const sparql::Query& query, const CompilerOptions& options,
    const QueryOptions& query_options) {
  auto start = MonotonicNow();
  const rdf::Dictionary& dict = graph_.dictionary();
  engine::ExecContext ctx;
  InitContext(query_options, num_partitions_, parallel_execution_, start,
              &ctx);
  ctx.collect_profile = false;

  // Solutions of the WHERE clause (all variables projected; the parser
  // sets select_all for graph forms). DESCRIBE without a WHERE clause
  // skips this.
  engine::Table solutions(std::vector<std::string>{});
  if (!query.where.triples.empty() || !query.where.unions.empty() ||
      !query.where.subqueries.empty() || !query.where.values.empty()) {
    QueryCompiler compiler(&catalog_, &dict, options);
    S2RDF_ASSIGN_OR_RETURN(engine::PlanPtr plan, compiler.Compile(query));
    S2RDF_ASSIGN_OR_RETURN(
        solutions, engine::ExecutePlan(*plan, catalog_.AsProvider(),
                                       &graph_.dictionary(), &ctx));
  }

  // Collect output statements, deduplicated (graphs are sets).
  std::set<std::string> statements;

  if (query.form == sparql::QueryForm::kConstruct) {
    for (size_t r = 0; r < solutions.NumRows(); ++r) {
      if ((r % engine::kInterruptCheckRows) == 0 && ctx.CheckInterrupt()) {
        return ctx.interrupt_status;
      }
      for (const sparql::TriplePattern& tp : query.construct_template) {
        std::string parts[3];
        bool ok = true;
        const sparql::PatternTerm* terms[3] = {&tp.subject, &tp.predicate,
                                               &tp.object};
        for (int i = 0; i < 3 && ok; ++i) {
          if (!terms[i]->is_variable()) {
            parts[i] = terms[i]->value;
            continue;
          }
          int col = solutions.ColumnIndex(terms[i]->value);
          if (col < 0) {
            ok = false;  // Template variable not bound by WHERE.
            break;
          }
          rdf::TermId id = solutions.At(r, static_cast<size_t>(col));
          if (id == engine::kNullTermId) {
            ok = false;  // Unbound (OPTIONAL): skip this triple.
            break;
          }
          parts[i] = dict.Decode(id);
        }
        // Well-formedness: literals cannot be subjects/predicates,
        // blank nodes cannot be predicates.
        if (ok && (parts[0].front() == '"' || parts[1].front() != '<')) {
          ok = false;
        }
        if (ok) {
          statements.insert(parts[0] + " " + parts[1] + " " + parts[2] +
                            " .");
        }
      }
    }
  } else {
    // DESCRIBE: resolve targets to term ids, then emit every statement
    // with the target as subject (a simple concise bounded description).
    std::set<rdf::TermId> targets;
    for (const sparql::PatternTerm& target : query.describe_targets) {
      if (!target.is_variable()) {
        std::optional<rdf::TermId> id = dict.Find(target.value);
        if (id.has_value()) targets.insert(*id);
        continue;
      }
      int col = solutions.ColumnIndex(target.value);
      if (col < 0) {
        return InvalidArgumentError("DESCRIBE variable ?" + target.value +
                                    " is not bound by the WHERE clause");
      }
      for (size_t r = 0; r < solutions.NumRows(); ++r) {
        rdf::TermId id = solutions.At(r, static_cast<size_t>(col));
        if (id != engine::kNullTermId) targets.insert(id);
      }
    }
    // Shared ownership keeps the triples table valid even if another
    // query's EvictToBudget drops it from the cache mid-loop.
    S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> triples,
                           catalog_.GetTableShared(TriplesTableName()));
    ctx.metrics.input_tuples += triples->NumRows();
    for (size_t r = 0; r < triples->NumRows(); ++r) {
      if ((r % engine::kInterruptCheckRows) == 0 && ctx.CheckInterrupt()) {
        return ctx.interrupt_status;
      }
      if (!targets.contains(triples->At(r, 0))) continue;
      statements.insert(dict.Decode(triples->At(r, 0)) + " " +
                        dict.Decode(triples->At(r, 1)) + " " +
                        dict.Decode(triples->At(r, 2)) + " .");
    }
  }

  QueryResult result;
  result.is_graph = true;
  for (const std::string& statement : statements) {
    result.graph_ntriples += statement + "\n";
  }
  ctx.metrics.output_tuples = statements.size();
  result.metrics = ctx.metrics;
  result.millis = MillisSince(start);
  result.trace_id = query_options.trace_id;
  catalog_.EvictToBudget();
  return result;
}

Status S2Rdf::LazyMaterializeFor(const sparql::GraphPattern& pattern) {
  const rdf::Dictionary& dict = graph_.dictionary();
  const auto& bgp = pattern.triples;
  auto same_var = [](const sparql::PatternTerm& a,
                     const sparql::PatternTerm& b) {
    return a.is_variable() && b.is_variable() && a.value == b.value;
  };
  for (size_t i = 0; i < bgp.size(); ++i) {
    if (bgp[i].predicate.is_variable()) continue;
    std::optional<rdf::TermId> p1 = dict.Find(bgp[i].predicate.value);
    if (!p1.has_value()) continue;
    for (size_t j = 0; j < bgp.size(); ++j) {
      if (i == j || bgp[j].predicate.is_variable()) continue;
      std::optional<rdf::TermId> p2 = dict.Find(bgp[j].predicate.value);
      if (!p2.has_value()) continue;
      struct Case {
        bool applies;
        Correlation corr;
      };
      const Case cases[3] = {
          {same_var(bgp[i].subject, bgp[j].subject), Correlation::kSS},
          {same_var(bgp[i].subject, bgp[j].object), Correlation::kSO},
          {same_var(bgp[i].object, bgp[j].subject), Correlation::kOS},
      };
      for (const Case& c : cases) {
        if (!c.applies) continue;
        if (c.corr == Correlation::kSS && *p1 == *p2) continue;
        S2RDF_RETURN_IF_ERROR(EnsureExtVpPair(c.corr, *p1, *p2));
      }
    }
  }
  for (const sparql::GraphPattern& opt : pattern.optionals) {
    S2RDF_RETURN_IF_ERROR(LazyMaterializeFor(opt));
  }
  for (const auto& chain : pattern.unions) {
    for (const sparql::GraphPattern& alt : chain) {
      S2RDF_RETURN_IF_ERROR(LazyMaterializeFor(alt));
    }
  }
  for (const auto& sub : pattern.subqueries) {
    S2RDF_RETURN_IF_ERROR(LazyMaterializeFor(sub->where));
  }
  return Status::Ok();
}

Status S2Rdf::EnsureExtVpPair(Correlation corr, rdf::TermId p1,
                              rdf::TermId p2) {
  const rdf::Dictionary& dict = graph_.dictionary();
  const std::string name = ExtVpTableName(dict, corr, p1, p2);
  {
    MutexLock lock(&lazy_mu_);
    // If another query is computing this pair right now, wait for it
    // rather than duplicating the work.
    while (lazy_in_flight_.contains(name)) lazy_cv_.Wait(&lazy_mu_);
    // MaterializeExtVpPair registers the name in the catalog (stats-only
    // when pruned), so Has doubles as the "already built" marker.
    if (catalog_.Has(name)) return Status::Ok();
    lazy_in_flight_.insert(name);
  }
  // Build outside the lock: distinct pairs materialize concurrently.
  lazy_pairs_computed_.fetch_add(1, std::memory_order_relaxed);
  Status status =
      MaterializeExtVpPair(dict, corr, p1, p2, sf_threshold_, &catalog_);
  {
    MutexLock lock(&lazy_mu_);
    lazy_in_flight_.erase(name);
  }
  lazy_cv_.NotifyAll();
  return status;
}

std::vector<std::vector<std::string>> S2Rdf::DecodeRows(
    const engine::Table& table) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.NumRows());
  const rdf::Dictionary& dict = graph_.dictionary();
  for (size_t r = 0; r < table.NumRows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.NumColumns());
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      rdf::TermId id = table.At(r, c);
      row.push_back(id == engine::kNullTermId ? "" : dict.Decode(id));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace s2rdf::core
