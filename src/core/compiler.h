#ifndef S2RDF_CORE_COMPILER_H_
#define S2RDF_CORE_COMPILER_H_

#include <vector>

#include "common/status.h"
#include "core/table_selection.h"
#include "engine/plan.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "storage/catalog.h"

// SPARQL -> relational plan compiler (Sec. 6 of the paper):
//   Algorithm 2 (TP2SQL)      — a triple pattern over its selected table
//   Algorithm 3 (BGP2SQL)     — join in pattern order
//   Algorithm 4 (BGP2SQL_opt) — statistics-driven join ordering
// plus the mapping of FILTER / OPTIONAL / UNION / DISTINCT / ORDER BY /
// LIMIT / OFFSET onto the engine's operators.

namespace s2rdf::core {

struct CompilerOptions {
  Layout layout = Layout::kExtVp;
  // Algorithm 4 (true) vs Algorithm 3 (false).
  bool optimize_join_order = true;
  // Allow the statistics-only empty-result shortcut (SF = 0 tables).
  bool use_statistics_shortcut = true;
  // Apply FILTERs as soon as their variables are bound inside the BGP
  // join pipeline instead of after the whole group (the "filter
  // pushing" of Sec. 6).
  bool push_filters = true;
  // EXPLAIN ANALYZE: record per-operator rows and timings in
  // QueryResult::profile.
  bool collect_profile = false;
  // Required for Layout::kExtVpBitmap; must outlive the compiler.
  const ExtVpBitmapStore* bitmap_store = nullptr;
};

class QueryCompiler {
 public:
  // `catalog` and `dict` must outlive the compiler.
  QueryCompiler(const storage::Catalog* catalog, const rdf::Dictionary* dict,
                CompilerOptions options)
      : catalog_(*catalog), dict_(*dict), options_(options) {}

  // Compiles a parsed query to an executable plan.
  StatusOr<engine::PlanPtr> Compile(const sparql::Query& query) const;

  // Compiles a bare BGP (used by tests and baseline engines). `filters`
  // are FILTER expressions to interleave into the join pipeline as soon
  // as their variables are bound (pushdown); any filter whose variables
  // are never fully bound is applied last.
  StatusOr<engine::PlanPtr> CompileBgp(
      const std::vector<sparql::TriplePattern>& bgp,
      const std::vector<const engine::Expr*>& filters = {}) const;

 private:
  StatusOr<engine::PlanPtr> CompileGroup(
      const sparql::GraphPattern& pattern) const;
  StatusOr<engine::PlanPtr> ScanForPattern(const sparql::TriplePattern& tp,
                                           const TableChoice& choice) const;

  const storage::Catalog& catalog_;
  const rdf::Dictionary& dict_;
  CompilerOptions options_;
  // One queries_degraded tick per compiled query, however many patterns
  // had to substitute tables. Compilers are per-query, so this does not
  // need synchronization; mutable because Compile is const.
  mutable bool noted_degraded_ = false;
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_COMPILER_H_
