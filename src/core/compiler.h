#ifndef S2RDF_CORE_COMPILER_H_
#define S2RDF_CORE_COMPILER_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/optimizer.h"
#include "core/table_selection.h"
#include "engine/plan.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "storage/catalog.h"

// SPARQL -> relational plan compiler. BGP compilation is an explicit
// three-stage pipeline:
//
//   Analyze   Algorithm 1 per pattern (table selection) plus the
//             cardinality estimator's view: per-scan row estimates and
//             the join graph with SF-derived selectivities.
//   Optimize  A pluggable core::Optimizer picks the join tree — the
//             paper's heuristic (Algorithms 3/4) or the cost-based
//             enumerator, selected by OptimizerOptions::mode.
//   Plan      Lowers the tree to engine::PlanNodes, interleaving FILTER
//             pushdown (Sec. 6) and semi-join reducers, and annotating
//             nodes with the optimizer's estimates for EXPLAIN.
//
// The query-level mapping of FILTER / OPTIONAL / UNION / DISTINCT /
// ORDER BY / LIMIT / OFFSET onto the engine's operators sits on top.

namespace s2rdf::core {

struct CompilerOptions {
  Layout layout = Layout::kExtVp;
  // Deprecated alias for optimizer.reorder_joins (Algorithm 4 vs 3).
  // Still honored: setting it false disables reordering whatever the
  // OptimizerOptions say. New code should use `optimizer`.
  [[deprecated("use CompilerOptions::optimizer.reorder_joins")]]
  bool optimize_join_order = true;
  // Allow the statistics-only empty-result shortcut (SF = 0 tables).
  bool use_statistics_shortcut = true;
  // Apply FILTERs as soon as their variables are bound inside the BGP
  // join pipeline instead of after the whole group (the "filter
  // pushing" of Sec. 6).
  bool push_filters = true;
  // EXPLAIN ANALYZE: record per-operator rows and timings in
  // QueryResult::profile.
  bool collect_profile = false;
  // Required for Layout::kExtVpBitmap; must outlive the compiler.
  const ExtVpBitmapStore* bitmap_store = nullptr;
  // Optimizer selection and knobs for the Optimize stage.
  OptimizerOptions optimizer;
};

// The OptimizerOptions a compiler will actually run with: `optimizer`
// merged with the deprecated legacy switches above.
OptimizerOptions EffectiveOptimizerOptions(const CompilerOptions& options);

class QueryCompiler {
 public:
  // `catalog` and `dict` must outlive the compiler.
  QueryCompiler(const storage::Catalog* catalog, const rdf::Dictionary* dict,
                CompilerOptions options);

  // Compiles a parsed query to an executable plan.
  StatusOr<engine::PlanPtr> Compile(const sparql::Query& query) const;

  // Compiles a bare BGP (used by tests and baseline engines): Analyze,
  // then Optimize via the configured optimizer, then Plan. `filters`
  // are FILTER expressions to interleave into the join pipeline as soon
  // as their variables are bound (pushdown); any filter whose variables
  // are never fully bound is applied last.
  StatusOr<engine::PlanPtr> CompileBgp(
      const std::vector<sparql::TriplePattern>& bgp,
      const std::vector<const engine::Expr*>& filters = {}) const;

  // Stage 1: table selection + cardinality estimation + join graph.
  // When the statistics prove the BGP empty, the returned analysis has
  // empty_result set and no further stage applies.
  StatusOr<BgpAnalysis> Analyze(
      const std::vector<sparql::TriplePattern>& bgp) const;

  // Stage 3: lowers an optimized join tree over `analysis` to a plan.
  StatusOr<engine::PlanPtr> Plan(
      const BgpAnalysis& analysis, const JoinTree& tree,
      const std::vector<const engine::Expr*>& filters = {}) const;

  // The resolved Optimize stage (paper or cost).
  const Optimizer& optimizer() const { return *optimizer_; }
  const OptimizerOptions& optimizer_options() const {
    return optimizer_options_;
  }

 private:
  StatusOr<engine::PlanPtr> CompileGroup(
      const sparql::GraphPattern& pattern) const;
  StatusOr<engine::PlanPtr> ScanForPattern(const sparql::TriplePattern& tp,
                                           const TableChoice& choice) const;
  // Recursive Plan-stage worker; see compiler.cc for the filter
  // placement rule that keeps paper-mode plans byte-identical to the
  // pre-pipeline compiler.
  StatusOr<engine::PlanPtr> LowerTree(
      const BgpAnalysis& analysis, const JoinTree& tree, bool is_right_leaf,
      std::vector<const engine::Expr*>* pending,
      std::unordered_set<std::string>* available) const;

  const storage::Catalog& catalog_;
  const rdf::Dictionary& dict_;
  CompilerOptions options_;
  OptimizerOptions optimizer_options_;
  std::unique_ptr<Optimizer> optimizer_;
  // One queries_degraded tick per compiled query, however many patterns
  // had to substitute tables. Compilers are per-query, so this does not
  // need synchronization; mutable because Compile is const.
  mutable bool noted_degraded_ = false;
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_COMPILER_H_
