#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace s2rdf::core {

namespace {

// Hash-build work degrades once the table outgrows cache; one work unit
// per 2^20 build rows of extra charge per probe keeps the model linear
// for small tables and super-linear for huge ones.
constexpr double kCacheRows = 1048576.0;

double Log2Work(double rows) {
  return rows * std::log2(std::max(rows, 2.0));
}

}  // namespace

double CostModel::ScanCost(double rows) const { return std::max(rows, 0.0); }

double CostModel::HashJoinCost(double left_rows, double right_rows,
                               double out_rows) const {
  // engine::HashJoin builds on the right and probes with the left.
  return 2.0 * right_rows * (1.0 + right_rows / kCacheRows) + left_rows +
         std::max(out_rows, 0.0);
}

double CostModel::SortMergeJoinCost(double left_rows, double right_rows,
                                    double out_rows) const {
  return 0.5 * (Log2Work(left_rows) + Log2Work(right_rows)) + left_rows +
         right_rows + std::max(out_rows, 0.0);
}

double CostModel::SemiJoinCost(double left_rows, double right_rows) const {
  return std::max(left_rows, 0.0) + std::max(right_rows, 0.0);
}

JoinAlgoChoice CostModel::ChooseJoinAlgo(double left_rows, double right_rows,
                                         double out_rows) const {
  const double hash = HashJoinCost(left_rows, right_rows, out_rows);
  const double merge = SortMergeJoinCost(left_rows, right_rows, out_rows);
  return merge < hash ? JoinAlgoChoice::kSortMerge : JoinAlgoChoice::kHash;
}

double CostModel::JoinCost(JoinAlgoChoice algo, double left_rows,
                           double right_rows, double out_rows) const {
  return algo == JoinAlgoChoice::kSortMerge
             ? SortMergeJoinCost(left_rows, right_rows, out_rows)
             : HashJoinCost(left_rows, right_rows, out_rows);
}

}  // namespace s2rdf::core
