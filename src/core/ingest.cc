#include "core/ingest.h"

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/layout_names.h"
#include "engine/table.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/triple.h"

namespace s2rdf::core {

namespace {

using rdf::TermId;
using storage::TableUpdate;

using VpRows = std::vector<std::pair<TermId, TermId>>;

constexpr int kNumCorrelations = 3;
constexpr Correlation kCorrelations[kNumCorrelations] = {
    Correlation::kSS, Correlation::kOS, Correlation::kSO};

// Column roles per correlation, identical to MaterializeExtVpPair:
// reduce VP_p1's `left` column by VP_p2's `right` column.
struct CorrCols {
  int left;
  int right;
};

CorrCols CorrColumns(Correlation corr) {
  switch (corr) {
    case Correlation::kSS:
      return {0, 0};
    case Correlation::kOS:
      return {1, 0};
    case Correlation::kSO:
      return {0, 1};
  }
  return {0, 0};
}

uint64_t SoKey(TermId s, TermId o) {
  return (static_cast<uint64_t>(s) << 32) | o;
}

// Pair identity for the affected-pair set: (correlation index, p1, p2).
using PairId = std::tuple<int, TermId, TermId>;

// Lazily loaded (s, o) row lists of the *pre-batch* VP tables. A
// quarantined or checksum-failing VP is reconstructed from the old
// triples table — TT's (s, p, o) dedup restricted to one predicate is
// exactly CollectVpRows' per-predicate dedup, in the same
// first-appearance order, so the reconstruction is byte-identical to
// the lost table (and the batch commit rewrites it, self-healing the
// quarantine).
class OldVpSource {
 public:
  OldVpSource(storage::Catalog* catalog, const rdf::Dictionary& dict,
              const engine::Table* old_tt)
      : catalog_(catalog), dict_(dict), old_tt_(old_tt) {}

  const VpRows& Rows(TermId p) {
    auto it = cache_.find(p);
    if (it != cache_.end()) return *it->second;
    auto rows = std::make_unique<VpRows>();
    std::string name = VpTableName(dict_, p);
    bool loaded = false;
    if (catalog_->Has(name) && !catalog_->IsQuarantined(name)) {
      auto table_or = catalog_->GetTableShared(name);
      if (table_or.ok()) {
        const engine::Table& t = *table_or.value();
        rows->reserve(t.NumRows());
        for (size_t r = 0; r < t.NumRows(); ++r) {
          rows->emplace_back(t.At(r, 0), t.At(r, 1));
        }
        loaded = true;
      }
    }
    if (!loaded && catalog_->Has(name)) {
      for (size_t r = 0; r < old_tt_->NumRows(); ++r) {
        if (old_tt_->At(r, 1) == p) {
          rows->emplace_back(old_tt_->At(r, 0), old_tt_->At(r, 2));
        }
      }
    }
    const VpRows& out = *rows;
    cache_.emplace(p, std::move(rows));
    return out;
  }

 private:
  storage::Catalog* catalog_;
  const rdf::Dictionary& dict_;
  const engine::Table* old_tt_;
  std::unordered_map<TermId, std::unique_ptr<VpRows>> cache_;
};

engine::Table TableFromRows(const VpRows& rows) {
  engine::Table table({"s", "o"});
  table.Reserve(rows.size());
  for (const auto& [s, o] : rows) table.AppendRow({s, o});
  return table;
}

// Shared state of one batch's ExtVP delta maintenance.
class DeltaMaintainer {
 public:
  // `trust_old_stats` says the catalog's stats describe `old_vp`'s
  // tables exactly (ingest). Refresh passes false: a stale pair's entry
  // undercounts against the already-committed VP tables, so only the
  // full scan may run.
  DeltaMaintainer(const IngestConfig& config, const rdf::Dictionary& dict,
                  storage::Catalog* catalog, OldVpSource* old_vp,
                  const std::unordered_map<TermId, VpRows>* delta,
                  bool trust_old_stats)
      : config_(config),
        dict_(dict),
        catalog_(catalog),
        old_vp_(old_vp),
        delta_(delta),
        trust_old_stats_(trust_old_stats) {}

  std::vector<TableUpdate>& updates() { return updates_; }

  // Delta-maintains the pair: recomputes its rows (when it can gain) or
  // amends its SF denominator (when only VP_p1 grew), emitting at most
  // one TableUpdate. `gain_possible` is the affected-pair verdict; for
  // pairs outside that set the row count provably cannot change.
  Status MaintainPair(Correlation corr, TermId p1, TermId p2,
                      bool gain_possible) {
    const std::string name = ExtVpTableName(dict_, corr, p1, p2);
    if (config_.lazy_extvp && !catalog_->Has(name)) {
      // "Pay as you go": uncomputed pairs stay uncomputed; their first
      // use builds them from the updated VP tables.
      return Status::Ok();
    }
    const storage::TableStats* old = catalog_->GetStats(name);
    const CorrCols cols = CorrColumns(corr);
    const VpRows& old_vp1 = old_vp_->Rows(p1);
    const VpRows* delta_p1 = DeltaOf(p1);
    const uint64_t new_vp1_rows =
        old_vp1.size() + (delta_p1 != nullptr ? delta_p1->size() : 0);
    if (new_vp1_rows == 0) return Status::Ok();

    uint64_t count;
    VpRows rows;        // Valid only when `have_rows`.
    bool have_rows = false;
    if (gain_possible) {
      S2RDF_RETURN_IF_ERROR(ComputeRows(name, old, cols, p1, p2, &rows));
      have_rows = true;
      count = rows.size();
    } else {
      if (old == nullptr || old->rows == 0) return Status::Ok();
      count = old->rows;
    }

    if (count == 0) {
      // Still empty: a from-scratch rebuild registers nothing, so emit
      // nothing (a pre-existing zero entry stays as-is).
      return Status::Ok();
    }
    const double sf =
        static_cast<double>(count) / static_cast<double>(new_vp1_rows);
    if (old != nullptr && old->rows == count) {
      if (old->selectivity == (count == new_vp1_rows ? 1.0 : sf) &&
          old->materialized == (count != new_vp1_rows &&
                                sf < config_.sf_threshold)) {
        return Status::Ok();  // Bit-for-bit unchanged.
      }
      if (old->materialized && count != new_vp1_rows &&
          sf < config_.sf_threshold) {
        // Row set untouched, only the SF denominator moved: amend the
        // stats and keep the existing file.
        TableUpdate update;
        update.name = name;
        update.rows = count;
        update.selectivity = sf;
        update.retain_table = true;
        updates_.push_back(std::move(update));
        return Status::Ok();
      }
    }
    TableUpdate update;
    update.name = name;
    if (count == new_vp1_rows) {
      // SF = 1: identical to the (updated) VP table, never stored.
      update.rows = count;
      update.selectivity = 1.0;
    } else if (sf >= config_.sf_threshold) {
      update.rows = count;
      update.selectivity = sf;
    } else {
      if (!have_rows) {
        S2RDF_RETURN_IF_ERROR(ComputeRows(name, old, cols, p1, p2, &rows));
      }
      update.table = TableFromRows(rows);
      update.selectivity = sf;
    }
    updates_.push_back(std::move(update));
    return Status::Ok();
  }

 private:
  const VpRows* DeltaOf(TermId p) const {
    auto it = delta_->find(p);
    return it == delta_->end() ? nullptr : &it->second;
  }

  // Join-key set of the updated VP_p2's `right_col`, cached per
  // (predicate, column).
  const std::unordered_set<TermId>& RightKeys(TermId p2, int right_col) {
    uint64_t cache_key = (static_cast<uint64_t>(p2) << 1) |
                         static_cast<uint64_t>(right_col);
    auto it = right_keys_.find(cache_key);
    if (it != right_keys_.end()) return *it->second;
    auto keys = std::make_unique<std::unordered_set<TermId>>();
    for (const auto& [s, o] : old_vp_->Rows(p2)) {
      keys->insert(right_col == 0 ? s : o);
    }
    if (const VpRows* d = DeltaOf(p2)) {
      for (const auto& [s, o] : *d) keys->insert(right_col == 0 ? s : o);
    }
    const std::unordered_set<TermId>& out = *keys;
    right_keys_.emplace(cache_key, std::move(keys));
    return out;
  }

  // Recomputes the pair's full row list in the updated VP_p1's row
  // order: the surviving pre-batch rows first (part 1), then the
  // surviving batch rows (part 2) — exactly the order a from-scratch
  // rebuild over the concatenated triple stream emits.
  Status ComputeRows(const std::string& name, const storage::TableStats* old,
                     CorrCols cols, TermId p1, TermId p2, VpRows* out) {
    const VpRows& old_vp1 = old_vp_->Rows(p1);
    const VpRows* delta_p1 = DeltaOf(p1);
    const VpRows* delta_p2 = DeltaOf(p2);
    const bool right_may_grow = delta_p2 != nullptr && !delta_p2->empty();

    // Part 1 — pre-batch VP_p1 rows that (still or newly) match. The
    // join-key set only ever grows, so matches are monotone: an SF = 1
    // pair keeps all rows, and when VP_p2 gained nothing the old
    // materialized reduction *is* part 1 verbatim. (The SF = 1 shortcut
    // is sound even against a stale entry: rows <= |old VP_p1| <=
    // |VP_p1| forces equality throughout, i.e. every row matched and
    // monotonicity keeps it that way.)
    if (old != nullptr && old->rows == old_vp1.size() && old->rows > 0) {
      *out = old_vp1;
    } else if (trust_old_stats_ && !right_may_grow &&
               (old == nullptr || old->rows == 0)) {
      // Nothing matched before and the key set is unchanged.
    } else if (trust_old_stats_ && !right_may_grow && old != nullptr &&
               old->materialized && !catalog_->IsQuarantined(name)) {
      auto table_or = catalog_->GetTableShared(name);
      if (table_or.ok()) {
        const engine::Table& t = *table_or.value();
        out->reserve(t.NumRows());
        for (size_t r = 0; r < t.NumRows(); ++r) {
          out->emplace_back(t.At(r, 0), t.At(r, 1));
        }
      } else {
        ScanPart1(cols, old_vp1, p2, out);
      }
    } else {
      ScanPart1(cols, old_vp1, p2, out);
    }
    // Part 2 — the batch's VP_p1 rows that match.
    if (delta_p1 != nullptr && !delta_p1->empty()) {
      const std::unordered_set<TermId>& keys = RightKeys(p2, cols.right);
      for (const auto& [s, o] : *delta_p1) {
        if (keys.contains(cols.left == 0 ? s : o)) out->emplace_back(s, o);
      }
    }
    return Status::Ok();
  }

  void ScanPart1(CorrCols cols, const VpRows& old_vp1, TermId p2,
                 VpRows* out) {
    const std::unordered_set<TermId>& keys = RightKeys(p2, cols.right);
    for (const auto& [s, o] : old_vp1) {
      if (keys.contains(cols.left == 0 ? s : o)) out->emplace_back(s, o);
    }
  }

  const IngestConfig& config_;
  const rdf::Dictionary& dict_;
  storage::Catalog* catalog_;
  OldVpSource* old_vp_;
  const std::unordered_map<TermId, VpRows>* delta_;
  bool trust_old_stats_;
  std::unordered_map<uint64_t, std::unique_ptr<std::unordered_set<TermId>>>
      right_keys_;
  std::vector<TableUpdate> updates_;
};

}  // namespace

StatusOr<storage::IngestResult> ApplyIngestBatch(
    const storage::IngestBatch& batch, const IngestConfig& config,
    rdf::Dictionary* dict, storage::Catalog* catalog) {
  auto start = MonotonicNow();
  storage::IngestResult result;
  result.triples_in_batch = batch.triples.size();
  result.generation = catalog->generation();

  if (!catalog->Has(TriplesTableName())) {
    return FailedPreconditionError(
        "ingest requires the triples table (build_triples_table)");
  }
  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> old_tt,
                         catalog->GetTableShared(TriplesTableName()));

  // Encode the batch; new terms are interned (the caller persists the
  // dictionary before the commit).
  std::vector<rdf::Triple> stream;
  stream.reserve(batch.triples.size());
  for (const storage::IngestTriple& t : batch.triples) {
    rdf::Triple encoded;
    encoded.subject = dict->Encode(t.subject);
    encoded.predicate = dict->Encode(t.predicate);
    encoded.object = dict->Encode(t.object);
    stream.push_back(encoded);
  }

  // Batch-internal dedup, keeping arrival order: candidate rows per
  // predicate under the same (s << 32 | o) key CollectVpRows uses.
  std::unordered_map<TermId, std::unordered_set<uint64_t>> candidate_keys;
  std::vector<rdf::Triple> candidates;
  std::unordered_set<TermId> delta_terms;
  for (const rdf::Triple& t : stream) {
    if (!candidate_keys[t.predicate].insert(SoKey(t.subject, t.object))
             .second) {
      continue;
    }
    candidates.push_back(t);
    delta_terms.insert(t.subject);
    delta_terms.insert(t.object);
  }

  // One scan of the old triples table: drop candidates the store
  // already holds, and build the term -> predicates maps (over old data)
  // that enumerate which ExtVP pairs the batch can affect.
  std::unordered_map<TermId, std::unordered_set<uint64_t>> existing_keys;
  std::unordered_map<TermId, std::set<TermId>> subj_preds;
  std::unordered_map<TermId, std::set<TermId>> obj_preds;
  std::set<TermId> all_preds;
  for (size_t r = 0; r < old_tt->NumRows(); ++r) {
    const TermId s = old_tt->At(r, 0);
    const TermId p = old_tt->At(r, 1);
    const TermId o = old_tt->At(r, 2);
    all_preds.insert(p);
    auto ck = candidate_keys.find(p);
    if (ck != candidate_keys.end() && ck->second.contains(SoKey(s, o))) {
      existing_keys[p].insert(SoKey(s, o));
    }
    if (delta_terms.contains(s)) subj_preds[s].insert(p);
    if (delta_terms.contains(o)) obj_preds[o].insert(p);
  }

  // The surviving delta: per-predicate rows and the interleaved stream
  // (the triples table appends in arrival order, VP tables per
  // predicate — matching what CollectVpRows/BuildTriplesTable produce
  // over the concatenated stream).
  std::unordered_map<TermId, VpRows> delta;
  std::vector<TermId> delta_preds;
  std::vector<rdf::Triple> surviving;
  for (const rdf::Triple& t : candidates) {
    auto ex = existing_keys.find(t.predicate);
    if (ex != existing_keys.end() &&
        ex->second.contains(SoKey(t.subject, t.object))) {
      continue;
    }
    auto [it, inserted] = delta.try_emplace(t.predicate);
    if (inserted) delta_preds.push_back(t.predicate);
    it->second.emplace_back(t.subject, t.object);
    surviving.push_back(t);
    subj_preds[t.subject].insert(t.predicate);
    obj_preds[t.object].insert(t.predicate);
    all_preds.insert(t.predicate);
  }
  result.triples_added = surviving.size();
  if (surviving.empty()) {
    result.millis = MillisSince(start);
    return result;  // Fully duplicate batch: no generation committed.
  }

  OldVpSource old_vp(catalog, *dict, old_tt.get());
  DeltaMaintainer maintainer(config, *dict, catalog, &old_vp, &delta,
                             /*trust_old_stats=*/true);

  // Triples-table and VP appends.
  {
    engine::Table new_tt = *old_tt;
    for (const rdf::Triple& t : surviving) {
      new_tt.AppendRow({t.subject, t.predicate, t.object});
    }
    TableUpdate update;
    update.name = TriplesTableName();
    update.table = std::move(new_tt);
    maintainer.updates().push_back(std::move(update));
  }
  for (TermId p : delta_preds) {
    engine::Table new_vp = TableFromRows(old_vp.Rows(p));
    for (const auto& [s, o] : delta[p]) new_vp.AppendRow({s, o});
    TableUpdate update;
    update.name = VpTableName(*dict, p);
    update.table = std::move(new_vp);
    maintainer.updates().push_back(std::move(update));
  }
  result.vp_tables_updated = delta_preds.size();

  storage::CommitOptions commit;
  const bool enabled[kNumCorrelations] = {
      catalog->Has("meta_extvp_ss"), catalog->Has("meta_extvp_os"),
      catalog->Has("meta_extvp_so")};
  const bool extvp_any = enabled[0] || enabled[1] || enabled[2];
  if (batch.defer_extvp_maintenance && extvp_any) {
    // Deferred mode: commit only the appends; dependents of the touched
    // VP tables are stale until RefreshStaleExtVp.
    for (TermId p : delta_preds) {
      std::string vp_name = VpTableName(*dict, p);
      if (!catalog->IsStaleSource(vp_name)) ++result.stale_sources_marked;
      commit.mark_stale.push_back(std::move(vp_name));
    }
  } else if (extvp_any) {
    // Sources already stale from an earlier deferred batch stay stale —
    // their reductions need a full refresh anyway, and refresh reads the
    // post-batch VP tables.
    std::set<TermId> stale_pids;
    for (TermId p : all_preds) {
      if (catalog->IsStaleSource(VpTableName(*dict, p))) {
        stale_pids.insert(p);
      }
    }

    // Pairs that can gain rows: for every surviving row, the partner
    // predicates its terms join with — the same per-correlation
    // term-index lookups BuildExtVpLayout's counting sweep does, from
    // both the left (p1 gains rows) and right (p1's old rows newly
    // match) side of each pair.
    std::set<PairId> affected;
    auto add = [&](int c, TermId p1, TermId p2) {
      if (kCorrelations[c] == Correlation::kSS && p1 == p2) return;
      if (stale_pids.contains(p1) || stale_pids.contains(p2)) return;
      affected.insert({c, p1, p2});
    };
    for (TermId p : delta_preds) {
      for (const auto& [s, o] : delta[p]) {
        if (enabled[0]) {
          for (TermId q : subj_preds[s]) {
            add(0, p, q);
            add(0, q, p);
          }
        }
        if (enabled[1]) {
          for (TermId q : subj_preds[o]) add(1, p, q);
          for (TermId q : obj_preds[s]) add(1, q, p);
        }
        if (enabled[2]) {
          for (TermId q : obj_preds[s]) add(2, p, q);
          for (TermId q : subj_preds[o]) add(2, q, p);
        }
      }
    }
    for (const auto& [c, p1, p2] : affected) {
      S2RDF_RETURN_IF_ERROR(maintainer.MaintainPair(
          kCorrelations[c], p1, p2, /*gain_possible=*/true));
    }
    // Every other pair whose left VP grew keeps its rows but sees a new
    // SF denominator (which can cross the materialization threshold in
    // either direction).
    for (TermId p1 : delta_preds) {
      if (stale_pids.contains(p1)) continue;
      for (TermId p2 : all_preds) {
        if (stale_pids.contains(p2)) continue;
        for (int c = 0; c < kNumCorrelations; ++c) {
          if (!enabled[c]) continue;
          if (kCorrelations[c] == Correlation::kSS && p1 == p2) continue;
          if (affected.contains({c, p1, p2})) continue;
          S2RDF_RETURN_IF_ERROR(maintainer.MaintainPair(
              kCorrelations[c], p1, p2, /*gain_possible=*/false));
        }
      }
    }
    result.extvp_tables_updated =
        maintainer.updates().size() - 1 - delta_preds.size();
  }

  S2RDF_RETURN_IF_ERROR(
      catalog->CommitBatch(std::move(maintainer.updates()), commit));
  result.generation = catalog->generation();
  result.millis = MillisSince(start);
  return result;
}

StatusOr<uint64_t> RefreshStaleExtVp(const IngestConfig& config,
                                     const rdf::Dictionary& dict,
                                     storage::Catalog* catalog) {
  std::vector<std::string> stale = catalog->StaleSources();
  if (stale.empty()) return 0;
  std::set<std::string> stale_set(stale.begin(), stale.end());

  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> tt,
                         catalog->GetTableShared(TriplesTableName()));
  std::set<TermId> all_preds;
  for (size_t r = 0; r < tt->NumRows(); ++r) all_preds.insert(tt->At(r, 1));
  std::set<TermId> stale_pids;
  for (TermId p : all_preds) {
    if (stale_set.contains(VpTableName(dict, p))) stale_pids.insert(p);
  }

  // Every pair with a stale predicate on either side is recomputed from
  // the current (post-ingest) VP tables — the "delta" is empty, so the
  // maintainer's plain semi-join scan path runs.
  OldVpSource current_vp(catalog, dict, tt.get());
  std::unordered_map<TermId, VpRows> no_delta;
  DeltaMaintainer maintainer(config, dict, catalog, &current_vp, &no_delta,
                             /*trust_old_stats=*/false);
  const bool enabled[kNumCorrelations] = {
      catalog->Has("meta_extvp_ss"), catalog->Has("meta_extvp_os"),
      catalog->Has("meta_extvp_so")};
  for (TermId p1 : all_preds) {
    for (TermId p2 : all_preds) {
      if (!stale_pids.contains(p1) && !stale_pids.contains(p2)) continue;
      for (int c = 0; c < kNumCorrelations; ++c) {
        if (!enabled[c]) continue;
        if (kCorrelations[c] == Correlation::kSS && p1 == p2) continue;
        S2RDF_RETURN_IF_ERROR(maintainer.MaintainPair(
            kCorrelations[c], p1, p2, /*gain_possible=*/true));
      }
    }
  }
  uint64_t refreshed = maintainer.updates().size();
  storage::CommitOptions commit;
  commit.clear_stale = std::move(stale);
  S2RDF_RETURN_IF_ERROR(
      catalog->CommitBatch(std::move(maintainer.updates()), commit));
  return refreshed;
}

StatusOr<storage::IngestBatch> MakeBatchFromNTriples(std::string_view text) {
  rdf::Graph graph;
  S2RDF_RETURN_IF_ERROR(rdf::ParseNTriples(text, &graph));
  storage::IngestBatch batch;
  batch.triples.reserve(graph.NumTriples());
  const rdf::Dictionary& dict = graph.dictionary();
  for (const rdf::Triple& t : graph.triples()) {
    batch.triples.push_back({dict.Decode(t.subject), dict.Decode(t.predicate),
                             dict.Decode(t.object)});
  }
  return batch;
}

}  // namespace s2rdf::core
