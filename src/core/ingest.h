#ifndef S2RDF_CORE_INGEST_H_
#define S2RDF_CORE_INGEST_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "storage/catalog.h"
#include "storage/ingest.h"

// Incremental ingest with ExtVP delta maintenance (ROADMAP: "incremental
// ExtVP maintenance under updates"). S2RDF's batch build computes every
// reduction from scratch; this module appends a batch of triples and
// repairs only the reductions the batch can actually change, via delta
// semi-joins:
//
//   - the new triples of predicate p1 are probed against the (updated)
//     VP_p2 key sets — rows the batch adds to ExtVP_corr_p1|p2;
//   - the existing VP_p1 rows are re-probed only where the batch added
//     *new* join keys to VP_p2 — rows old data gains retroactively;
//   - every pair whose left VP grew has its SF denominator re-evaluated,
//     which can demote a reduction to stats-only (SF hit 1.0) or
//     materialize a previously pruned one (SF dropped below the
//     threshold).
//
// Rows are emitted in the updated VP_p1's row order — existing rows
// first, batch rows in arrival order — which is exactly the order a
// from-scratch rebuild over the concatenated triple stream produces, so
// every generation's tables are byte-identical to a full rebuild (the
// crash-matrix test's oracle). All changed tables commit through one
// Catalog::CommitBatch, i.e. one atomic manifest flip.

namespace s2rdf::core {

struct IngestConfig {
  // ExtVP materialization threshold; must match the store's build-time
  // threshold or delta decisions diverge from a rebuild's.
  double sf_threshold = 1.0;
  // "Pay as you go" stores: maintain only reductions that already have
  // stats entries; pairs never requested stay uncomputed and are built
  // from the updated VP tables on first use.
  bool lazy_extvp = false;
};

// Encodes, deduplicates and applies `batch` to the catalog's triples
// table, VP tables and (unless deferred) dependent ExtVP reductions,
// committing atomically. New terms are interned into `dict`; the caller
// persists the dictionary *before* calling (a crash between the two
// must leave the dictionary a superset of what the manifest references,
// never a subset). Requires the triples table ("triples") to exist.
StatusOr<storage::IngestResult> ApplyIngestBatch(
    const storage::IngestBatch& batch, const IngestConfig& config,
    rdf::Dictionary* dict, storage::Catalog* catalog);

// Recomputes every ExtVP reduction that depends on a stale source VP
// table (deferred batches) from the current VP tables and commits the
// repairs plus the stale-set clear in one batch. Returns the number of
// reductions recomputed. No-op when nothing is stale.
StatusOr<uint64_t> RefreshStaleExtVp(const IngestConfig& config,
                                     const rdf::Dictionary& dict,
                                     storage::Catalog* catalog);

// Parses N-Triples text into an IngestBatch (the HTTP and CLI entry
// points accept raw N-Triples bodies).
StatusOr<storage::IngestBatch> MakeBatchFromNTriples(std::string_view text);

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_INGEST_H_
