#include "core/compiler.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace s2rdf::core {

namespace {

using engine::PlanNode;
using engine::PlanPtr;
using sparql::GraphPattern;
using sparql::PatternTerm;
using sparql::TriplePattern;

// Number of bound (non-variable) positions — the primary join-order key
// of Algorithm 4 ("patterns with more bound values are executed first").
int BoundCount(const TriplePattern& tp) {
  int n = 0;
  if (!tp.subject.is_variable()) ++n;
  if (!tp.predicate.is_variable()) ++n;
  if (!tp.object.is_variable()) ++n;
  return n;
}

bool SharesVariable(const TriplePattern& tp,
                    const std::unordered_set<std::string>& vars) {
  for (const std::string& v : tp.Variables()) {
    if (vars.contains(v)) return true;
  }
  return false;
}

}  // namespace

StatusOr<PlanPtr> QueryCompiler::ScanForPattern(
    const TriplePattern& tp, const TableChoice& choice) const {
  std::vector<std::pair<std::string, std::string>> selections;
  std::vector<std::pair<std::string, std::string>> equal_selections;
  std::vector<std::pair<std::string, std::string>> projections;

  // Position -> base column name. VP/ExtVP tables have columns (s, o)
  // with the predicate implied; the triples table has (s, p, o).
  struct Position {
    const PatternTerm* term;
    const char* column;
    bool in_table;
  };
  const Position positions[3] = {
      {&tp.subject, "s", true},
      {&tp.predicate, "p", choice.is_triples_table},
      {&tp.object, "o", true},
  };

  std::unordered_set<std::string> seen_vars;
  std::vector<std::pair<std::string, std::string>> var_first_column;
  for (const Position& pos : positions) {
    if (!pos.in_table) continue;  // Bound predicate implied by the table.
    if (pos.term->is_variable()) {
      // Repeated variable inside one pattern -> equal-column selection.
      bool repeated = false;
      for (const auto& [var, column] : var_first_column) {
        if (var == pos.term->value) {
          equal_selections.emplace_back(column, pos.column);
          repeated = true;
          break;
        }
      }
      if (!repeated) {
        var_first_column.emplace_back(pos.term->value, pos.column);
        projections.emplace_back(pos.column, pos.term->value);
      }
    } else {
      selections.emplace_back(pos.column, pos.term->value);
    }
  }

  engine::PlanPtr scan =
      PlanNode::Scan(choice.table_name, std::move(selections),
                     std::move(projections), std::move(equal_selections));
  if (choice.row_filter != nullptr) {
    scan->row_filter = choice.row_filter;
    scan->row_filter_label = choice.row_filter_label;
  }
  scan->scan_layout = choice.layout_label;
  scan->scan_sf = choice.sf;
  scan->scan_degraded = choice.degraded;
  return scan;
}

StatusOr<PlanPtr> QueryCompiler::CompileBgp(
    const std::vector<TriplePattern>& bgp,
    const std::vector<const engine::Expr*>& filters) const {
  if (bgp.empty()) {
    return InvalidArgumentError("empty basic graph pattern");
  }

  // Algorithm 1 per pattern.
  std::vector<TableChoice> choices;
  choices.reserve(bgp.size());
  for (size_t i = 0; i < bgp.size(); ++i) {
    S2RDF_ASSIGN_OR_RETURN(
        TableChoice choice,
        SelectTable(i, bgp, options_.layout, options_.use_statistics_shortcut,
                    catalog_, dict_, options_.bitmap_store));
    if (choice.degraded && !noted_degraded_) {
      noted_degraded_ = true;
      catalog_.NoteDegradedQuery();
    }
    if (choice.empty_result) {
      // Statistics prove emptiness: return an empty relation with the
      // BGP's variables as schema (Algorithm 3, line 4).
      std::unordered_set<std::string> seen;
      std::vector<std::string> columns;
      for (const TriplePattern& tp : bgp) {
        for (const std::string& v : tp.Variables()) {
          if (seen.insert(v).second) columns.push_back(v);
        }
      }
      return PlanNode::Empty(std::move(columns));
    }
    choices.push_back(std::move(choice));
  }

  // Join order: Algorithm 3 keeps the pattern order; Algorithm 4 orders
  // by bound values, then by selected-table size, avoiding cross joins.
  std::vector<size_t> order;
  if (!options_.optimize_join_order) {
    for (size_t i = 0; i < bgp.size(); ++i) order.push_back(i);
  } else {
    std::vector<size_t> remaining;
    for (size_t i = 0; i < bgp.size(); ++i) remaining.push_back(i);
    std::unordered_set<std::string> bound_vars;
    while (!remaining.empty()) {
      // Candidates: patterns connected to the joined prefix (all
      // patterns for the first pick or if none connects).
      std::vector<size_t> connected;
      for (size_t idx : remaining) {
        if (bound_vars.empty() || SharesVariable(bgp[idx], bound_vars)) {
          connected.push_back(idx);
        }
      }
      if (connected.empty()) connected = remaining;  // Forced cross join.
      size_t best = connected[0];
      for (size_t idx : connected) {
        int bc_best = BoundCount(bgp[best]);
        int bc_idx = BoundCount(bgp[idx]);
        if (bc_idx > bc_best ||
            (bc_idx == bc_best && choices[idx].rows < choices[best].rows)) {
          best = idx;
        }
      }
      order.push_back(best);
      remaining.erase(std::find(remaining.begin(), remaining.end(), best));
      for (const std::string& v : bgp[best].Variables()) {
        bound_vars.insert(v);
      }
    }
  }

  // Fold the joins, pushing each FILTER down to the first point where
  // all of its variables are bound.
  std::vector<const engine::Expr*> pending(filters.begin(), filters.end());
  std::unordered_set<std::string> bound;
  auto apply_ready_filters = [&](PlanPtr plan) {
    for (auto it = pending.begin(); it != pending.end();) {
      bool ready = true;
      for (const std::string& v : (*it)->ReferencedVariables()) {
        if (!bound.contains(v)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        plan = PlanNode::FilterNode(std::move(plan), (*it)->Clone());
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    return plan;
  };

  PlanPtr plan;
  for (size_t idx : order) {
    S2RDF_ASSIGN_OR_RETURN(PlanPtr scan,
                           ScanForPattern(bgp[idx], choices[idx]));
    plan = plan == nullptr ? std::move(scan)
                           : PlanNode::Join(std::move(plan), std::move(scan));
    for (const std::string& v : bgp[idx].Variables()) bound.insert(v);
    plan = apply_ready_filters(std::move(plan));
  }
  // Filters that never became ready (variables not bound by this BGP)
  // still apply — on rows where they evaluate to error they drop the
  // row, matching FILTER semantics over the group.
  for (const engine::Expr* filter : pending) {
    plan = PlanNode::FilterNode(std::move(plan), filter->Clone());
  }
  return plan;
}

StatusOr<PlanPtr> QueryCompiler::CompileGroup(
    const GraphPattern& pattern) const {
  PlanPtr plan;

  // Filter pushdown: a group-level FILTER whose variables are all bound
  // by this group's BGP can run inside the BGP join pipeline. Filters
  // referencing UNION- or OPTIONAL-bound variables stay at group level.
  std::vector<const engine::Expr*> pushable;
  std::vector<const engine::Expr*> group_level;
  if (options_.push_filters && !pattern.triples.empty()) {
    std::unordered_set<std::string> bgp_vars;
    for (const TriplePattern& tp : pattern.triples) {
      for (const std::string& v : tp.Variables()) bgp_vars.insert(v);
    }
    for (const engine::ExprPtr& filter : pattern.filters) {
      bool covered = true;
      for (const std::string& v : filter->ReferencedVariables()) {
        if (!bgp_vars.contains(v)) {
          covered = false;
          break;
        }
      }
      (covered ? pushable : group_level).push_back(filter.get());
    }
  } else {
    for (const engine::ExprPtr& filter : pattern.filters) {
      group_level.push_back(filter.get());
    }
  }

  if (!pattern.triples.empty()) {
    S2RDF_ASSIGN_OR_RETURN(plan, CompileBgp(pattern.triples, pushable));
  }

  // UNION chains join with the rest of the group.
  for (const auto& chain : pattern.unions) {
    PlanPtr union_plan;
    for (const GraphPattern& alt : chain) {
      S2RDF_ASSIGN_OR_RETURN(PlanPtr alt_plan, CompileGroup(alt));
      union_plan = union_plan == nullptr
                       ? std::move(alt_plan)
                       : PlanNode::Union(std::move(union_plan),
                                         std::move(alt_plan));
    }
    plan = plan == nullptr
               ? std::move(union_plan)
               : PlanNode::Join(std::move(plan), std::move(union_plan));
  }

  // VALUES blocks join their inline rows with the rest of the group.
  for (const sparql::InlineData& data : pattern.values) {
    engine::PlanPtr inline_plan =
        PlanNode::InlineDataNode(data.variables, data.rows);
    plan = plan == nullptr
               ? std::move(inline_plan)
               : PlanNode::Join(std::move(plan), std::move(inline_plan));
  }

  // SPARQL 1.1 subqueries join with the rest of the group; only their
  // projected variables are visible.
  for (const auto& sub : pattern.subqueries) {
    S2RDF_ASSIGN_OR_RETURN(PlanPtr sub_plan, Compile(*sub));
    plan = plan == nullptr
               ? std::move(sub_plan)
               : PlanNode::Join(std::move(plan), std::move(sub_plan));
  }

  if (plan == nullptr) {
    return InvalidArgumentError("group graph pattern has no triple patterns");
  }

  // OPTIONAL -> left outer join. Filters directly inside the optional
  // group become the join condition (they may reference outer
  // variables), per the SPARQL LeftJoin(P1, P2, C) semantics.
  for (const GraphPattern& optional : pattern.optionals) {
    PlanPtr opt_plan;
    engine::ExprPtr condition;
    if (optional.unions.empty() && optional.optionals.empty()) {
      // Plain optional BGP: its filters become the join condition so
      // they can reference outer variables.
      S2RDF_ASSIGN_OR_RETURN(opt_plan, CompileBgp(optional.triples));
      for (const engine::ExprPtr& f : optional.filters) {
        condition = condition == nullptr
                        ? f->Clone()
                        : engine::Expr::And(std::move(condition), f->Clone());
      }
    } else {
      // Nested structure: compile the whole group; its filters then only
      // see variables bound inside the optional part.
      S2RDF_ASSIGN_OR_RETURN(opt_plan, CompileGroup(optional));
    }
    plan = PlanNode::LeftJoin(std::move(plan), std::move(opt_plan),
                              std::move(condition));
  }

  for (const engine::Expr* filter : group_level) {
    plan = PlanNode::FilterNode(std::move(plan), filter->Clone());
  }
  return plan;
}

StatusOr<PlanPtr> QueryCompiler::Compile(const sparql::Query& query) const {
  S2RDF_ASSIGN_OR_RETURN(PlanPtr plan, CompileGroup(query.where));

  if (query.is_ask) {
    // ASK: any single solution answers the query.
    return PlanNode::SliceNode(std::move(plan), 0, 1);
  }

  // SPARQL 1.1 aggregation: GROUP BY and/or aggregate select items.
  const bool is_aggregate =
      !query.aggregates.empty() || !query.group_by.empty();
  if (is_aggregate) {
    if (query.select_all) {
      return InvalidArgumentError(
          "SELECT * cannot be combined with aggregates/GROUP BY");
    }
    // Every plain projected variable must be a grouping key.
    for (const std::string& name : query.projection) {
      bool is_alias = false;
      for (const engine::AggregateSpec& spec : query.aggregates) {
        if (spec.output_name == name) is_alias = true;
      }
      if (is_alias) continue;
      if (std::find(query.group_by.begin(), query.group_by.end(), name) ==
          query.group_by.end()) {
        return InvalidArgumentError(
            "variable ?" + name +
            " must appear in GROUP BY or inside an aggregate");
      }
    }
    plan = PlanNode::AggregateNode(std::move(plan), query.group_by,
                                   query.aggregates);
  }

  std::vector<std::string> projection =
      query.select_all ? query.where.AllVariables() : query.projection;
  plan = PlanNode::ProjectNode(std::move(plan), std::move(projection));

  if (query.distinct) plan = PlanNode::DistinctNode(std::move(plan));
  if (!query.order_by.empty()) {
    plan = PlanNode::OrderByNode(std::move(plan), query.order_by);
  }
  if (query.offset > 0 || query.limit != engine::kNoLimit) {
    plan = PlanNode::SliceNode(std::move(plan), query.offset, query.limit);
  }
  return plan;
}

}  // namespace s2rdf::core
