#include "core/compiler.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "core/cardinality.h"
#include "core/cost_model.h"

namespace s2rdf::core {

namespace {

using engine::PlanNode;
using engine::PlanPtr;
using sparql::GraphPattern;
using sparql::PatternTerm;
using sparql::TriplePattern;

// Number of bound (non-variable) positions — the primary join-order key
// of Algorithm 4 ("patterns with more bound values are executed first").
int BoundCount(const TriplePattern& tp) {
  int n = 0;
  if (!tp.subject.is_variable()) ++n;
  if (!tp.predicate.is_variable()) ++n;
  if (!tp.object.is_variable()) ++n;
  return n;
}

// The pattern's variables in s/p/o order, deduplicated.
std::vector<std::string> PatternVariables(const TriplePattern& tp) {
  std::vector<std::string> vars;
  for (const std::string& v : tp.Variables()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  return vars;
}

// Applies every pending filter whose variables are all bound AND
// available as columns of `plan` (the two differ under bushy trees:
// a variable may be bound by a sibling subtree this plan cannot see).
PlanPtr ApplyReadyFilters(PlanPtr plan,
                          const std::unordered_set<std::string>& available,
                          std::vector<const engine::Expr*>* pending) {
  for (auto it = pending->begin(); it != pending->end();) {
    bool ready = true;
    for (const std::string& v : (*it)->ReferencedVariables()) {
      if (!available.contains(v)) {
        ready = false;
        break;
      }
    }
    if (ready) {
      plan = PlanNode::FilterNode(std::move(plan), (*it)->Clone());
      it = pending->erase(it);
    } else {
      ++it;
    }
  }
  return plan;
}

}  // namespace

OptimizerOptions EffectiveOptimizerOptions(const CompilerOptions& options) {
  OptimizerOptions opt = options.optimizer;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // The legacy ablation switch still works: false forces Algorithm 3
  // ordering whatever the new options say.
  // s2rdf-lint: allow(deprecated-api)
  if (!options.optimize_join_order) opt.reorder_joins = false;
#pragma GCC diagnostic pop
  return opt;
}

QueryCompiler::QueryCompiler(const storage::Catalog* catalog,
                             const rdf::Dictionary* dict,
                             CompilerOptions options)
    : catalog_(*catalog),
      dict_(*dict),
      options_(std::move(options)),
      optimizer_options_(EffectiveOptimizerOptions(options_)),
      optimizer_(Optimizer::Create(optimizer_options_)) {}

StatusOr<PlanPtr> QueryCompiler::ScanForPattern(
    const TriplePattern& tp, const TableChoice& choice) const {
  std::vector<std::pair<std::string, std::string>> selections;
  std::vector<std::pair<std::string, std::string>> equal_selections;
  std::vector<std::pair<std::string, std::string>> projections;

  // Position -> base column name. VP/ExtVP tables have columns (s, o)
  // with the predicate implied; the triples table has (s, p, o).
  struct Position {
    const PatternTerm* term;
    const char* column;
    bool in_table;
  };
  const Position positions[3] = {
      {&tp.subject, "s", true},
      {&tp.predicate, "p", choice.is_triples_table},
      {&tp.object, "o", true},
  };

  std::unordered_set<std::string> seen_vars;
  std::vector<std::pair<std::string, std::string>> var_first_column;
  for (const Position& pos : positions) {
    if (!pos.in_table) continue;  // Bound predicate implied by the table.
    if (pos.term->is_variable()) {
      // Repeated variable inside one pattern -> equal-column selection.
      bool repeated = false;
      for (const auto& [var, column] : var_first_column) {
        if (var == pos.term->value) {
          equal_selections.emplace_back(column, pos.column);
          repeated = true;
          break;
        }
      }
      if (!repeated) {
        var_first_column.emplace_back(pos.term->value, pos.column);
        projections.emplace_back(pos.column, pos.term->value);
      }
    } else {
      selections.emplace_back(pos.column, pos.term->value);
    }
  }

  engine::PlanPtr scan =
      PlanNode::Scan(choice.table_name, std::move(selections),
                     std::move(projections), std::move(equal_selections));
  if (choice.row_filter != nullptr) {
    scan->row_filter = choice.row_filter;
    scan->row_filter_label = choice.row_filter_label;
  }
  scan->scan_layout = choice.layout_label;
  scan->scan_sf = choice.sf;
  scan->scan_degraded = choice.degraded;
  return scan;
}

StatusOr<BgpAnalysis> QueryCompiler::Analyze(
    const std::vector<TriplePattern>& bgp) const {
  if (bgp.empty()) {
    return InvalidArgumentError("empty basic graph pattern");
  }
  BgpAnalysis analysis;
  analysis.bgp = bgp;
  analysis.patterns.reserve(bgp.size());

  CardinalityEstimator estimator(catalog_, dict_);
  CostModel cost_model;

  // Algorithm 1 per pattern, plus the estimator's view of the scan.
  for (size_t i = 0; i < bgp.size(); ++i) {
    S2RDF_ASSIGN_OR_RETURN(
        TableChoice choice,
        SelectTable(i, bgp, options_.layout, options_.use_statistics_shortcut,
                    catalog_, dict_, options_.bitmap_store));
    if (choice.degraded && !noted_degraded_) {
      noted_degraded_ = true;
      catalog_.NoteDegradedQuery();
    }
    if (choice.empty_result) {
      // Statistics prove emptiness (Algorithm 3, line 4); the remaining
      // patterns are left unanalyzed.
      analysis.empty_result = true;
      return analysis;
    }
    PatternInfo info;
    info.scan_rows = estimator.ScanRows(bgp[i], choice);
    info.scan_cost = cost_model.ScanCost(info.scan_rows);
    info.bound_count = BoundCount(bgp[i]);
    info.variables = PatternVariables(bgp[i]);
    info.choice = std::move(choice);
    analysis.patterns.push_back(std::move(info));
  }

  // Join graph: one edge per pattern pair sharing >= 1 variable, with
  // SF-derived selectivity and per-side survival fractions.
  for (size_t i = 0; i < bgp.size(); ++i) {
    for (size_t j = i + 1; j < bgp.size(); ++j) {
      JoinEdge edge;
      edge.a = i;
      edge.b = j;
      for (const std::string& v : analysis.patterns[i].variables) {
        const auto& jv = analysis.patterns[j].variables;
        if (std::find(jv.begin(), jv.end(), v) != jv.end()) {
          if (edge.shared_vars == 0) edge.shared_var = v;
          ++edge.shared_vars;
        }
      }
      if (edge.shared_vars == 0) continue;
      const PatternInfo& pa = analysis.patterns[i];
      const PatternInfo& pb = analysis.patterns[j];
      edge.keep_a = estimator.KeepFraction(bgp[i], pa.choice, bgp[j]);
      edge.keep_b = estimator.KeepFraction(bgp[j], pb.choice, bgp[i]);
      const double out = estimator.JoinRows(bgp[i], pa.choice, pa.scan_rows,
                                            bgp[j], pb.choice, pb.scan_rows);
      const double denom =
          std::max(pa.scan_rows, 1e-6) * std::max(pb.scan_rows, 1e-6);
      edge.selectivity = std::clamp(out / denom, 1e-12, 1.0);
      analysis.edges.push_back(std::move(edge));
    }
  }
  return analysis;
}

StatusOr<PlanPtr> QueryCompiler::LowerTree(
    const BgpAnalysis& analysis, const JoinTree& tree, bool is_right_leaf,
    std::vector<const engine::Expr*>* pending,
    std::unordered_set<std::string>* available) const {
  // Filter placement rule: ready filters are applied after every
  // lowered node EXCEPT leaves that are right children of joins. For
  // the left-deep trees paper mode produces this is exactly the old
  // fold — filters after the first scan and after each join — so paper
  // plans stay byte-identical to the pre-pipeline compiler. For bushy
  // trees it additionally lets subtree-local filters run early.
  if (tree.is_leaf()) {
    const size_t i = static_cast<size_t>(tree.pattern);
    const PatternInfo& info = analysis.patterns[i];
    S2RDF_ASSIGN_OR_RETURN(PlanPtr plan,
                           ScanForPattern(analysis.bgp[i], info.choice));
    plan->estimated_rows = info.scan_rows;
    plan->estimated_cost = info.scan_cost;
    // Semi-join reducers: cut the scan down by the projected join
    // column of selective neighbors before the scan meets a real join.
    double rows = info.scan_rows;
    for (int r : tree.reducers) {
      const size_t j = static_cast<size_t>(r);
      const JoinEdge* edge = FindEdge(analysis, i, j);
      if (edge == nullptr) {
        return InternalError("semi-join reducer without a join edge");
      }
      S2RDF_ASSIGN_OR_RETURN(
          PlanPtr reducer,
          ScanForPattern(analysis.bgp[j], analysis.patterns[j].choice));
      reducer->estimated_rows = analysis.patterns[j].scan_rows;
      reducer->estimated_cost = analysis.patterns[j].scan_cost;
      PlanPtr projected = PlanNode::ProjectNode(
          std::move(reducer), std::vector<std::string>{edge->shared_var});
      rows *= edge->a == i ? edge->keep_a : edge->keep_b;
      plan = PlanNode::SemiJoinNode(std::move(plan), std::move(projected));
      plan->estimated_rows = rows;
    }
    for (const std::string& v : info.variables) available->insert(v);
    if (!is_right_leaf) {
      plan = ApplyReadyFilters(std::move(plan), *available, pending);
    }
    return plan;
  }

  std::unordered_set<std::string> left_vars;
  std::unordered_set<std::string> right_vars;
  S2RDF_ASSIGN_OR_RETURN(
      PlanPtr left,
      LowerTree(analysis, *tree.left, /*is_right_leaf=*/false, pending,
                &left_vars));
  S2RDF_ASSIGN_OR_RETURN(
      PlanPtr right,
      LowerTree(analysis, *tree.right, tree.right->is_leaf(), pending,
                &right_vars));
  available->insert(left_vars.begin(), left_vars.end());
  available->insert(right_vars.begin(), right_vars.end());
  PlanPtr plan = PlanNode::Join(std::move(left), std::move(right));
  plan->join_algo = tree.algo == JoinAlgoChoice::kSortMerge
                        ? PlanNode::JoinAlgo::kSortMerge
                        : PlanNode::JoinAlgo::kHash;
  plan->estimated_rows = tree.est_rows;
  plan->estimated_cost = tree.est_cost;
  return ApplyReadyFilters(std::move(plan), *available, pending);
}

StatusOr<PlanPtr> QueryCompiler::Plan(
    const BgpAnalysis& analysis, const JoinTree& tree,
    const std::vector<const engine::Expr*>& filters) const {
  std::vector<const engine::Expr*> pending(filters.begin(), filters.end());
  std::unordered_set<std::string> available;
  S2RDF_ASSIGN_OR_RETURN(
      PlanPtr plan,
      LowerTree(analysis, tree, /*is_right_leaf=*/false, &pending,
                &available));
  // Filters that never became ready (variables not bound by this BGP)
  // still apply — on rows where they evaluate to error they drop the
  // row, matching FILTER semantics over the group.
  for (const engine::Expr* filter : pending) {
    plan = PlanNode::FilterNode(std::move(plan), filter->Clone());
  }
  return plan;
}

StatusOr<PlanPtr> QueryCompiler::CompileBgp(
    const std::vector<TriplePattern>& bgp,
    const std::vector<const engine::Expr*>& filters) const {
  S2RDF_ASSIGN_OR_RETURN(BgpAnalysis analysis, Analyze(bgp));
  if (analysis.empty_result) {
    // Empty relation with the BGP's variables as schema.
    std::unordered_set<std::string> seen;
    std::vector<std::string> columns;
    for (const TriplePattern& tp : bgp) {
      for (const std::string& v : tp.Variables()) {
        if (seen.insert(v).second) columns.push_back(v);
      }
    }
    return PlanNode::Empty(std::move(columns));
  }
  S2RDF_ASSIGN_OR_RETURN(JoinTreePtr tree, optimizer_->Optimize(analysis));
  return Plan(analysis, *tree, filters);
}

StatusOr<PlanPtr> QueryCompiler::CompileGroup(
    const GraphPattern& pattern) const {
  PlanPtr plan;

  // Filter pushdown: a group-level FILTER whose variables are all bound
  // by this group's BGP can run inside the BGP join pipeline. Filters
  // referencing UNION- or OPTIONAL-bound variables stay at group level.
  std::vector<const engine::Expr*> pushable;
  std::vector<const engine::Expr*> group_level;
  if (options_.push_filters && !pattern.triples.empty()) {
    std::unordered_set<std::string> bgp_vars;
    for (const TriplePattern& tp : pattern.triples) {
      for (const std::string& v : tp.Variables()) bgp_vars.insert(v);
    }
    for (const engine::ExprPtr& filter : pattern.filters) {
      bool covered = true;
      for (const std::string& v : filter->ReferencedVariables()) {
        if (!bgp_vars.contains(v)) {
          covered = false;
          break;
        }
      }
      (covered ? pushable : group_level).push_back(filter.get());
    }
  } else {
    for (const engine::ExprPtr& filter : pattern.filters) {
      group_level.push_back(filter.get());
    }
  }

  if (!pattern.triples.empty()) {
    S2RDF_ASSIGN_OR_RETURN(plan, CompileBgp(pattern.triples, pushable));
  }

  // UNION chains join with the rest of the group.
  for (const auto& chain : pattern.unions) {
    PlanPtr union_plan;
    for (const GraphPattern& alt : chain) {
      S2RDF_ASSIGN_OR_RETURN(PlanPtr alt_plan, CompileGroup(alt));
      union_plan = union_plan == nullptr
                       ? std::move(alt_plan)
                       : PlanNode::Union(std::move(union_plan),
                                         std::move(alt_plan));
    }
    plan = plan == nullptr
               ? std::move(union_plan)
               : PlanNode::Join(std::move(plan), std::move(union_plan));
  }

  // VALUES blocks join their inline rows with the rest of the group.
  for (const sparql::InlineData& data : pattern.values) {
    engine::PlanPtr inline_plan =
        PlanNode::InlineDataNode(data.variables, data.rows);
    plan = plan == nullptr
               ? std::move(inline_plan)
               : PlanNode::Join(std::move(plan), std::move(inline_plan));
  }

  // SPARQL 1.1 subqueries join with the rest of the group; only their
  // projected variables are visible.
  for (const auto& sub : pattern.subqueries) {
    S2RDF_ASSIGN_OR_RETURN(PlanPtr sub_plan, Compile(*sub));
    plan = plan == nullptr
               ? std::move(sub_plan)
               : PlanNode::Join(std::move(plan), std::move(sub_plan));
  }

  if (plan == nullptr) {
    return InvalidArgumentError("group graph pattern has no triple patterns");
  }

  // OPTIONAL -> left outer join. Filters directly inside the optional
  // group become the join condition (they may reference outer
  // variables), per the SPARQL LeftJoin(P1, P2, C) semantics.
  for (const GraphPattern& optional : pattern.optionals) {
    PlanPtr opt_plan;
    engine::ExprPtr condition;
    if (optional.unions.empty() && optional.optionals.empty()) {
      // Plain optional BGP: its filters become the join condition so
      // they can reference outer variables.
      S2RDF_ASSIGN_OR_RETURN(opt_plan, CompileBgp(optional.triples));
      for (const engine::ExprPtr& f : optional.filters) {
        condition = condition == nullptr
                        ? f->Clone()
                        : engine::Expr::And(std::move(condition), f->Clone());
      }
    } else {
      // Nested structure: compile the whole group; its filters then only
      // see variables bound inside the optional part.
      S2RDF_ASSIGN_OR_RETURN(opt_plan, CompileGroup(optional));
    }
    plan = PlanNode::LeftJoin(std::move(plan), std::move(opt_plan),
                              std::move(condition));
  }

  for (const engine::Expr* filter : group_level) {
    plan = PlanNode::FilterNode(std::move(plan), filter->Clone());
  }
  return plan;
}

StatusOr<PlanPtr> QueryCompiler::Compile(const sparql::Query& query) const {
  S2RDF_ASSIGN_OR_RETURN(PlanPtr plan, CompileGroup(query.where));

  if (query.is_ask) {
    // ASK: any single solution answers the query.
    return PlanNode::SliceNode(std::move(plan), 0, 1);
  }

  // SPARQL 1.1 aggregation: GROUP BY and/or aggregate select items.
  const bool is_aggregate =
      !query.aggregates.empty() || !query.group_by.empty();
  if (is_aggregate) {
    if (query.select_all) {
      return InvalidArgumentError(
          "SELECT * cannot be combined with aggregates/GROUP BY");
    }
    // Every plain projected variable must be a grouping key.
    for (const std::string& name : query.projection) {
      bool is_alias = false;
      for (const engine::AggregateSpec& spec : query.aggregates) {
        if (spec.output_name == name) is_alias = true;
      }
      if (is_alias) continue;
      if (std::find(query.group_by.begin(), query.group_by.end(), name) ==
          query.group_by.end()) {
        return InvalidArgumentError(
            "variable ?" + name +
            " must appear in GROUP BY or inside an aggregate");
      }
    }
    plan = PlanNode::AggregateNode(std::move(plan), query.group_by,
                                   query.aggregates);
  }

  std::vector<std::string> projection =
      query.select_all ? query.where.AllVariables() : query.projection;
  plan = PlanNode::ProjectNode(std::move(plan), std::move(projection));

  if (query.distinct) plan = PlanNode::DistinctNode(std::move(plan));
  if (!query.order_by.empty()) {
    plan = PlanNode::OrderByNode(std::move(plan), query.order_by);
  }
  if (query.offset > 0 || query.limit != engine::kNoLimit) {
    plan = PlanNode::SliceNode(std::move(plan), query.offset, query.limit);
  }
  return plan;
}

}  // namespace s2rdf::core
