#include "core/table_selection.h"

#include <array>
#include <optional>

namespace s2rdf::core {

namespace {

using sparql::PatternTerm;
using sparql::TriplePattern;

// True when both positions are the same variable.
bool SameVar(const PatternTerm& a, const PatternTerm& b) {
  return a.is_variable() && b.is_variable() && a.value == b.value;
}

// The correlations of bgp[tp_index] to one other pattern, in the fixed
// SS/SO/OS order Algorithm 1 examines them.
struct CorrelationCase {
  bool applies;
  Correlation corr;
};

std::array<CorrelationCase, 3> CorrelationsTo(const TriplePattern& tp,
                                              const TriplePattern& other) {
  return {{{SameVar(tp.subject, other.subject), Correlation::kSS},
           {SameVar(tp.subject, other.object), Correlation::kSO},
           {SameVar(tp.object, other.subject), Correlation::kOS}}};
}

// Layout::kExtVpBitmap selection: intersect the bitmaps of every
// applicable correlation over the pattern's VP table (the paper's
// proposed unification strategy).
StatusOr<TableChoice> SelectWithBitmaps(
    size_t tp_index, const std::vector<TriplePattern>& bgp,
    bool use_statistics_shortcut, const ExtVpBitmapStore& store,
    rdf::TermId p1, TableChoice choice,
    const rdf::Dictionary& dict) {
  const TriplePattern& tp = bgp[tp_index];
  for (size_t j = 0; j < bgp.size(); ++j) {
    if (j == tp_index) continue;
    const TriplePattern& other = bgp[j];
    if (other.predicate.is_variable()) continue;
    std::optional<rdf::TermId> p2 = dict.Find(other.predicate.value);
    if (!p2.has_value()) continue;
    for (const CorrelationCase& cand : CorrelationsTo(tp, other)) {
      if (!cand.applies) continue;
      if (cand.corr == Correlation::kSS && p1 == *p2) continue;
      if (!store.HasCorrelation(cand.corr)) continue;
      if (store.IsEmpty(cand.corr, p1, *p2)) {
        if (use_statistics_shortcut) {
          choice = TableChoice();
          choice.empty_result = true;
          return choice;
        }
        continue;
      }
      const Bitmap* bitmap = store.Get(cand.corr, p1, *p2);
      if (bitmap == nullptr) continue;  // SF = 1 or threshold-pruned.
      if (choice.row_filter == nullptr) {
        choice.row_filter = std::make_shared<Bitmap>(*bitmap);
        choice.row_filter_label.clear();
      } else {
        choice.row_filter->IntersectWith(*bitmap);
      }
      if (!choice.row_filter_label.empty()) choice.row_filter_label += "&";
      choice.row_filter_label +=
          std::string(CorrelationName(cand.corr)) + "|" +
          PredicateFragment(dict.Decode(*p2));
    }
  }
  if (choice.row_filter != nullptr) {
    choice.layout_label = "ExtVP-bitmap";
    choice.rows = choice.row_filter->CountSetBits();
    choice.sf = choice.row_filter->size_bits() == 0
                    ? 0.0
                    : static_cast<double>(choice.rows) /
                          static_cast<double>(choice.row_filter->size_bits());
    if (choice.rows == 0 && use_statistics_shortcut) {
      // The intersection is empty: a statically-provable empty result
      // that the table representation cannot always detect.
      choice = TableChoice();
      choice.empty_result = true;
    }
  }
  return choice;
}

}  // namespace

StatusOr<TableChoice> SelectTable(size_t tp_index,
                                  const std::vector<TriplePattern>& bgp,
                                  Layout layout,
                                  bool use_statistics_shortcut,
                                  const storage::Catalog& catalog,
                                  const rdf::Dictionary& dict,
                                  const ExtVpBitmapStore* bitmap_store) {
  if (tp_index >= bgp.size()) {
    return InvalidArgumentError("tp_index out of range");
  }
  const TriplePattern& tp = bgp[tp_index];
  TableChoice choice;

  // Bound subject/object terms that are absent from the dictionary can
  // never match: the statistics (dictionary) already prove emptiness.
  if (use_statistics_shortcut) {
    for (const PatternTerm* term : {&tp.subject, &tp.object}) {
      if (!term->is_variable() && !dict.Find(term->value).has_value()) {
        choice.empty_result = true;
        return choice;
      }
    }
  }

  // Unbound predicate: only the triples table can answer it (Sec. 5.2).
  if (tp.predicate.is_variable() || layout == Layout::kTriplesTable) {
    const storage::TableStats* stats =
        catalog.GetStats(TriplesTableName());
    if (stats == nullptr) {
      return FailedPreconditionError(
          "triples table required but not built (unbound predicate or "
          "triples-table layout)");
    }
    choice.table_name = TriplesTableName();
    choice.rows = stats->rows;
    choice.is_triples_table = true;
    choice.layout_label = "TT";
    return choice;
  }

  std::optional<rdf::TermId> p1 = dict.Find(tp.predicate.value);
  if (!p1.has_value()) {
    // Predicate absent from the dataset: no VP table exists.
    choice.empty_result = true;
    return choice;
  }

  std::string vp_name = VpTableName(dict, *p1);
  const storage::TableStats* vp_stats = catalog.GetStats(vp_name);
  if (vp_stats == nullptr) {
    return FailedPreconditionError("VP table missing: " + vp_name);
  }
  choice.table_name = vp_name;
  choice.sf = 1.0;
  choice.rows = vp_stats->rows;

  // A quarantined VP table cannot be scanned; degrade to the triples
  // table with an explicit predicate selection (is_triples_table makes
  // ScanForPattern emit it). TT ⊇ VP, so results are unchanged.
  if (catalog.IsQuarantined(vp_name)) {
    const storage::TableStats* tt_stats =
        catalog.GetStats(TriplesTableName());
    if (tt_stats == nullptr || catalog.IsQuarantined(TriplesTableName())) {
      return FailedPreconditionError(
          "VP table quarantined and no triples table to degrade to: " +
          vp_name);
    }
    choice.table_name = TriplesTableName();
    choice.sf = 1.0;
    choice.rows = tt_stats->rows;
    choice.is_triples_table = true;
    choice.degraded = true;
    choice.layout_label = "TT";
    return choice;
  }

  if (layout == Layout::kVp) return choice;

  if (layout == Layout::kExtVpBitmap) {
    if (bitmap_store == nullptr) {
      return FailedPreconditionError(
          "Layout::kExtVpBitmap requires an ExtVpBitmapStore");
    }
    return SelectWithBitmaps(tp_index, bgp, use_statistics_shortcut,
                             *bitmap_store, *p1, std::move(choice), dict);
  }

  // Examine the correlations of tp to every other pattern (Algorithm 1).
  for (size_t j = 0; j < bgp.size(); ++j) {
    if (j == tp_index) continue;
    const TriplePattern& other = bgp[j];
    if (other.predicate.is_variable()) continue;
    std::optional<rdf::TermId> p2 = dict.Find(other.predicate.value);
    if (!p2.has_value()) continue;  // That pattern is empty on its own.

    for (const CorrelationCase& cand : CorrelationsTo(tp, other)) {
      if (!cand.applies) continue;
      if (cand.corr == Correlation::kSS && *p1 == *p2) {
        continue;  // SS self-correlation is the VP table itself.
      }
      // Skip directions that were not precomputed.
      std::string meta =
          "meta_extvp_" + std::string(CorrelationName(cand.corr));
      if (!catalog.Has(meta)) continue;
      std::string name = ExtVpTableName(dict, cand.corr, *p1, *p2);
      if (catalog.IsStaleSource(vp_name) ||
          catalog.IsStaleSource(VpTableName(dict, *p2))) {
        // A deferred ingest appended to one of the pair's VP tables:
        // the reduction misses those triples (it is no longer a
        // superset of a fresh semi-join) and its statistics
        // undercount, so neither the empty-result shortcut nor a scan
        // may use it until RefreshStaleExtVp catches up.
        continue;
      }
      const storage::TableStats* stats = catalog.GetStats(name);
      if (stats == nullptr) {
        // No stats entry for a built direction means the semi-join was
        // empty (SF = 0): the whole BGP can be answered statically.
        if (use_statistics_shortcut) {
          choice = TableChoice();
          choice.empty_result = true;
          return choice;
        }
        continue;
      }
      if (stats->rows == 0) {
        // Lazily-computed empty reduction (BuildExtVpLayout leaves empty
        // combinations without a stats entry; the lazy path records
        // them explicitly).
        if (use_statistics_shortcut) {
          choice = TableChoice();
          choice.empty_result = true;
          return choice;
        }
        continue;
      }
      if (!stats->materialized) continue;  // SF = 1 or pruned by threshold.
      if (stats->selectivity < choice.sf) {
        if (catalog.IsQuarantined(name)) {
          // The better ExtVP table is corrupt: stay on the current
          // (superset) choice and record the degradation.
          choice.degraded = true;
          continue;
        }
        choice.table_name = name;
        choice.sf = stats->selectivity;
        choice.rows = stats->rows;
        choice.layout_label = "ExtVP";
      }
    }
  }
  return choice;
}

}  // namespace s2rdf::core
