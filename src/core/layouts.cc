#include "core/layouts.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/clock.h"
#include "common/task_pool.h"
#include "engine/operators.h"

namespace s2rdf::core {

namespace {
using rdf::TermId;
}  // namespace

// RDF graphs are sets, so every layout builds from the deduped triple
// set to stay mutually consistent (and row-aligned with the bitmaps).
VpRowData CollectVpRows(const rdf::Graph& graph) {
  VpRowData out;
  std::unordered_map<TermId, std::unordered_set<uint64_t>> seen;
  for (const rdf::Triple& t : graph.triples()) {
    uint64_t key = (static_cast<uint64_t>(t.subject) << 32) | t.object;
    auto [it, inserted] = seen[t.predicate].insert(key);
    if (!inserted) continue;
    auto rows = out.rows.find(t.predicate);
    if (rows == out.rows.end()) {
      out.predicates.push_back(t.predicate);
      rows = out.rows.emplace(t.predicate,
                              std::vector<std::pair<TermId, TermId>>())
                 .first;
    }
    rows->second.emplace_back(t.subject, t.object);
  }
  return out;
}

Status BuildTriplesTable(const rdf::Graph& graph, storage::Catalog* catalog) {
  engine::Table table({"s", "p", "o"});
  table.Reserve(graph.NumTriples());
  std::unordered_set<uint64_t> seen;
  seen.reserve(graph.NumTriples());
  for (const rdf::Triple& t : graph.triples()) {
    // 96-bit triple folded to 64 bits of exact state is not enough; use a
    // two-level check: hash set of mixed key plus verification is
    // overkill here — duplicates are rare, so key on (s^rot(p), o).
    uint64_t key = (static_cast<uint64_t>(t.subject) << 32) | t.object;
    key = key * 0x9e3779b97f4a7c15ULL + t.predicate;
    if (!seen.insert(key).second) {
      // Possible duplicate (or a hash collision dropping a distinct
      // triple with probability ~n^2/2^64 — negligible for our scales).
      continue;
    }
    table.AppendRow({t.subject, t.predicate, t.object});
  }
  return catalog->Put(TriplesTableName(), std::move(table), 1.0);
}

Status BuildVpLayout(const rdf::Graph& graph, storage::Catalog* catalog) {
  VpRowData vp = CollectVpRows(graph);
  for (TermId p : vp.predicates) {
    const auto& rows = vp.rows[p];
    engine::Table table({"s", "o"});
    table.Reserve(rows.size());
    for (const auto& [s, o] : rows) table.AppendRow({s, o});
    S2RDF_RETURN_IF_ERROR(
        catalog->Put(VpTableName(graph.dictionary(), p), std::move(table),
                     1.0));
  }
  return Status::Ok();
}

StatusOr<ExtVpBuildStats> BuildExtVpLayout(const rdf::Graph& graph,
                                           const ExtVpOptions& options,
                                           storage::Catalog* catalog) {
  auto start_time = MonotonicNow();
  ExtVpBuildStats build_stats;
  const rdf::Dictionary& dict = graph.dictionary();
  VpRowData vp = CollectVpRows(graph);
  const size_t k = vp.predicates.size();

  // Dense predicate indices for compact pair keys.
  std::unordered_map<TermId, uint32_t> pred_index;
  for (size_t i = 0; i < k; ++i) {
    pred_index[vp.predicates[i]] = static_cast<uint32_t>(i);
  }

  // term -> sorted distinct predicate indices where the term occurs as
  // subject / object. These power all three correlation directions in a
  // single linear pass instead of k^2 semi-joins.
  std::unordered_map<TermId, std::vector<uint32_t>> subject_preds;
  std::unordered_map<TermId, std::vector<uint32_t>> object_preds;
  for (size_t i = 0; i < k; ++i) {
    for (const auto& [s, o] : vp.rows[vp.predicates[i]]) {
      auto& sp = subject_preds[s];
      if (sp.empty() || sp.back() != i) sp.push_back(static_cast<uint32_t>(i));
      auto& op = object_preds[o];
      if (op.empty() || op.back() != i) op.push_back(static_cast<uint32_t>(i));
    }
  }

  constexpr int kNumCorrelations = 3;
  const Correlation kCorrelations[kNumCorrelations] = {
      Correlation::kSS, Correlation::kOS, Correlation::kSO};
  const bool enabled[kNumCorrelations] = {options.build_ss, options.build_os,
                                          options.build_so};

  auto pair_key = [](uint32_t p1, uint32_t p2) {
    return (static_cast<uint64_t>(p1) << 32) | p2;
  };

  // Pass 1: count |ExtVP_corr_p1|p2| for all non-empty combinations.
  // The per-predicate counting is independent across p1 (all writes go
  // to the accumulator passed in), so the parallel build runs strided
  // predicate chunks on the shared TaskPool with per-chunk accumulators
  // merged below — counts are additive, so the merged result is
  // byte-identical to the serial sweep. The term->predicates indexes
  // are read-only here (find, never operator[]).
  std::unordered_map<uint64_t, uint64_t> counts[kNumCorrelations];
  auto count_rows_of = [&](size_t i1,
                           std::unordered_map<uint64_t, uint64_t>* acc) {
    uint32_t p1 = static_cast<uint32_t>(i1);
    for (const auto& [s, o] : vp.rows[vp.predicates[i1]]) {
      if (enabled[0]) {
        for (uint32_t p2 : subject_preds.find(s)->second) {
          if (p2 != p1) ++acc[0][pair_key(p1, p2)];
        }
      }
      if (enabled[1]) {
        auto it = subject_preds.find(o);
        if (it != subject_preds.end()) {
          for (uint32_t p2 : it->second) ++acc[1][pair_key(p1, p2)];
        }
      }
      if (enabled[2]) {
        auto it = object_preds.find(s);
        if (it != object_preds.end()) {
          for (uint32_t p2 : it->second) ++acc[2][pair_key(p1, p2)];
        }
      }
    }
  };
  if (options.parallel_build && k > 1) {
    TaskPool* pool = TaskPool::Shared();
    const size_t chunks = std::min(k, pool->ParallelismWidth() * 4);
    std::vector<std::array<std::unordered_map<uint64_t, uint64_t>,
                           kNumCorrelations>>
        local(chunks);
    pool->ParallelFor(chunks, [&](size_t chunk) {
      for (size_t i1 = chunk; i1 < k; i1 += chunks) {
        count_rows_of(i1, local[chunk].data());
      }
    });
    for (auto& chunk_counts : local) {
      for (int c = 0; c < kNumCorrelations; ++c) {
        for (const auto& [key, n] : chunk_counts[c]) counts[c][key] += n;
      }
    }
  } else {
    for (size_t i1 = 0; i1 < k; ++i1) count_rows_of(i1, counts);
  }

  // Decide materialization per combination and register statistics.
  // selected[corr] maps pair key -> output table (filled in pass 2).
  std::unordered_map<uint64_t, engine::Table> selected[kNumCorrelations];
  for (int c = 0; c < kNumCorrelations; ++c) {
    if (!enabled[c]) continue;
    // The number of combinations considered includes empty ones: all
    // ordered pairs (minus p1 == p2 for SS).
    build_stats.tables_considered +=
        static_cast<uint64_t>(k) * k - (kCorrelations[c] == Correlation::kSS
                                            ? static_cast<uint64_t>(k)
                                            : 0);
    for (const auto& [key, count] : counts[c]) {
      uint32_t i1 = static_cast<uint32_t>(key >> 32);
      uint32_t i2 = static_cast<uint32_t>(key & 0xffffffffu);
      TermId p1 = vp.predicates[i1];
      TermId p2 = vp.predicates[i2];
      uint64_t vp_rows = vp.rows[p1].size();
      double sf = static_cast<double>(count) / static_cast<double>(vp_rows);
      std::string name = ExtVpTableName(dict, kCorrelations[c], p1, p2);
      if (count == vp_rows) {
        // SF = 1: identical to VP, never stored (red tables in Fig. 10).
        ++build_stats.tables_equal_vp;
        catalog->PutStatsOnly(name, count, 1.0);
        continue;
      }
      if (sf >= options.sf_threshold) {
        ++build_stats.tables_pruned;
        catalog->PutStatsOnly(name, count, sf);
        continue;
      }
      ++build_stats.tables_materialized;
      build_stats.tuples_materialized += count;
      engine::Table table({"s", "o"});
      table.Reserve(count);
      selected[c].emplace(key, std::move(table));
    }
  }
  build_stats.tables_empty =
      build_stats.tables_considered -
      (counts[0].size() + counts[1].size() + counts[2].size());

  // Pass 2: fill the selected tables in one more sweep. Every table
  // ExtVP_corr_p1|p2 is keyed by p1 and receives rows only from p1's
  // iteration, so running one task per p1 keeps each table
  // single-writer (the `selected` maps themselves are only read) and
  // fills it in exactly the serial row order — the parallel build's
  // tables are byte-identical to the serial build's.
  auto fill_rows_of = [&](size_t i1) {
    uint32_t p1 = static_cast<uint32_t>(i1);
    for (const auto& [s, o] : vp.rows[vp.predicates[i1]]) {
      if (enabled[0]) {
        for (uint32_t p2 : subject_preds.find(s)->second) {
          if (p2 == p1) continue;
          auto it = selected[0].find(pair_key(p1, p2));
          if (it != selected[0].end()) it->second.AppendRow({s, o});
        }
      }
      if (enabled[1]) {
        auto sp = subject_preds.find(o);
        if (sp != subject_preds.end()) {
          for (uint32_t p2 : sp->second) {
            auto it = selected[1].find(pair_key(p1, p2));
            if (it != selected[1].end()) it->second.AppendRow({s, o});
          }
        }
      }
      if (enabled[2]) {
        auto op = object_preds.find(s);
        if (op != object_preds.end()) {
          for (uint32_t p2 : op->second) {
            auto it = selected[2].find(pair_key(p1, p2));
            if (it != selected[2].end()) it->second.AppendRow({s, o});
          }
        }
      }
    }
  };
  if (options.parallel_build && k > 1) {
    TaskPool::Shared()->ParallelFor(k, fill_rows_of);
  } else {
    for (size_t i1 = 0; i1 < k; ++i1) fill_rows_of(i1);
  }

  for (int c = 0; c < kNumCorrelations; ++c) {
    for (auto& [key, table] : selected[c]) {
      uint32_t i1 = static_cast<uint32_t>(key >> 32);
      uint32_t i2 = static_cast<uint32_t>(key & 0xffffffffu);
      TermId p1 = vp.predicates[i1];
      TermId p2 = vp.predicates[i2];
      double sf = static_cast<double>(table.NumRows()) /
                  static_cast<double>(vp.rows[p1].size());
      S2RDF_RETURN_IF_ERROR(
          catalog->Put(ExtVpTableName(dict, kCorrelations[c], p1, p2),
                       std::move(table), sf));
    }
  }

  // Marker entries so the compiler can distinguish "combination empty"
  // from "correlation direction never built".
  if (options.build_ss) catalog->PutStatsOnly("meta_extvp_ss", 1, 1.0);
  if (options.build_os) catalog->PutStatsOnly("meta_extvp_os", 1, 1.0);
  if (options.build_so) catalog->PutStatsOnly("meta_extvp_so", 1, 1.0);

  build_stats.build_seconds = SecondsSince(start_time);
  return build_stats;
}

Status MaterializeExtVpPair(const rdf::Dictionary& dict, Correlation corr,
                            rdf::TermId p1, rdf::TermId p2,
                            double sf_threshold,
                            storage::Catalog* catalog) {
  std::string name = ExtVpTableName(dict, corr, p1, p2);
  if (catalog->Has(name)) return Status::Ok();  // Already computed.
  // Shared ownership: a concurrent query's eviction pass must not free
  // the VP tables while this reduction is being computed.
  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> vp1,
                         catalog->GetTableShared(VpTableName(dict, p1)));
  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> vp2,
                         catalog->GetTableShared(VpTableName(dict, p2)));

  // Column roles per correlation: reduce VP_p1 by the matching column
  // of VP_p2 (Sec. 5.2's semi-join definitions).
  int left_col;   // Column of VP_p1 that must find a partner.
  int right_col;  // Column of VP_p2 providing the partners.
  switch (corr) {
    case Correlation::kSS:
      left_col = 0;
      right_col = 0;
      break;
    case Correlation::kOS:
      left_col = 1;
      right_col = 0;
      break;
    case Correlation::kSO:
      left_col = 0;
      right_col = 1;
      break;
    default:
      return InvalidArgumentError("unknown correlation");
  }

  engine::Table reduced =
      engine::SemiJoin(*vp1, left_col, *vp2, right_col, nullptr);
  double sf = vp1->NumRows() == 0
                  ? 0.0
                  : static_cast<double>(reduced.NumRows()) /
                        static_cast<double>(vp1->NumRows());
  if (reduced.NumRows() == 0 || reduced.NumRows() == vp1->NumRows() ||
      sf >= sf_threshold) {
    // Empty, equal to VP, or pruned: statistics only.
    catalog->PutStatsOnly(name, reduced.NumRows(),
                          reduced.NumRows() == vp1->NumRows() ? 1.0 : sf);
    return Status::Ok();
  }
  return catalog->Put(name, std::move(reduced), sf);
}

StatusOr<PropertyTableBuildStats> BuildPropertyTable(
    const rdf::Graph& graph, PropertyTableStrategy strategy,
    storage::Catalog* catalog) {
  PropertyTableBuildStats build_stats;
  const rdf::Dictionary& dict = graph.dictionary();
  VpRowData vp = CollectVpRows(graph);

  // subject -> predicate -> values.
  std::map<TermId, std::map<TermId, std::vector<TermId>>> by_subject;
  for (TermId p : vp.predicates) {
    for (const auto& [s, o] : vp.rows[p]) by_subject[s][p].push_back(o);
  }

  // A predicate is multi-valued if any subject carries >= 2 values.
  std::unordered_set<TermId> multi_valued;
  for (const auto& [s, preds] : by_subject) {
    for (const auto& [p, values] : preds) {
      if (values.size() > 1) multi_valued.insert(p);
    }
  }

  std::vector<TermId> inline_preds;
  for (TermId p : vp.predicates) {
    bool is_multi = multi_valued.contains(p);
    if (strategy == PropertyTableStrategy::kAuxiliaryTables && is_multi) {
      build_stats.multi_valued.push_back(p);
    } else {
      inline_preds.push_back(p);
      build_stats.single_valued.push_back(p);
    }
  }

  // Column names reuse the VP naming so the Sempala engine can address
  // columns uniformly.
  std::vector<std::string> names = {"s"};
  for (TermId p : inline_preds) names.push_back(VpTableName(dict, p));
  engine::Table pt(std::move(names));

  for (const auto& [s, preds] : by_subject) {
    // Cross product over the value lists of the inlined predicates
    // (absent predicate -> single null). Under kAuxiliaryTables every
    // inlined predicate has at most one value, so this emits one row.
    std::vector<std::vector<TermId>> value_lists;
    value_lists.reserve(inline_preds.size());
    bool any = false;
    for (TermId p : inline_preds) {
      auto it = preds.find(p);
      if (it == preds.end()) {
        value_lists.push_back({engine::kNullTermId});
      } else {
        value_lists.push_back(it->second);
        any = true;
      }
    }
    if (!any) continue;  // Subject only appears with aux predicates.
    std::vector<size_t> cursor(value_lists.size(), 0);
    while (true) {
      std::vector<TermId> row;
      row.reserve(1 + value_lists.size());
      row.push_back(s);
      for (size_t i = 0; i < value_lists.size(); ++i) {
        row.push_back(value_lists[i][cursor[i]]);
      }
      pt.AppendRow(row);
      // Odometer increment.
      size_t i = 0;
      for (; i < cursor.size(); ++i) {
        if (++cursor[i] < value_lists[i].size()) break;
        cursor[i] = 0;
      }
      if (i == cursor.size()) break;
    }
  }

  build_stats.pt_rows = pt.NumRows();
  S2RDF_RETURN_IF_ERROR(
      catalog->Put(PropertyTableName(), std::move(pt), 1.0));

  for (TermId p : build_stats.multi_valued) {
    const auto& rows = vp.rows[p];
    engine::Table aux({"s", "o"});
    aux.Reserve(rows.size());
    for (const auto& [s, o] : rows) aux.AppendRow({s, o});
    build_stats.aux_tuples += rows.size();
    ++build_stats.aux_tables;
    S2RDF_RETURN_IF_ERROR(
        catalog->Put(PropertyAuxTableName(dict, p), std::move(aux), 1.0));
  }
  return build_stats;
}

}  // namespace s2rdf::core
