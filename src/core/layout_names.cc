#include "core/layout_names.h"

#include <cctype>
#include <string_view>

namespace s2rdf::core {

std::string PredicateFragment(const std::string& canonical_term) {
  // Strip angle brackets, then take the fragment after the last '/', '#'
  // or ':'.
  std::string iri = canonical_term;
  if (iri.size() >= 2 && iri.front() == '<' && iri.back() == '>') {
    iri = iri.substr(1, iri.size() - 2);
  }
  size_t cut = iri.find_last_of("/#:");
  std::string local = cut == std::string::npos ? iri : iri.substr(cut + 1);
  std::string out;
  for (char c : local) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(c));
    } else {
      out += '_';
    }
    if (out.size() >= 24) break;
  }
  if (out.empty()) out = "p";
  return out;
}

std::string TriplesTableName() { return "triples"; }

std::string VpTableName(const rdf::Dictionary& dict, rdf::TermId predicate) {
  return "vp_" + PredicateFragment(dict.Decode(predicate)) + "_" +
         std::to_string(predicate);
}

std::string ExtVpTableName(const rdf::Dictionary& dict, Correlation corr,
                           rdf::TermId p1, rdf::TermId p2) {
  return "extvp_" + std::string(CorrelationName(corr)) + "_" +
         PredicateFragment(dict.Decode(p1)) + "_" + std::to_string(p1) +
         "__" + PredicateFragment(dict.Decode(p2)) + "_" + std::to_string(p2);
}

std::string VpTableNameForExtVp(const std::string& extvp_name) {
  // "extvp_<corr>_<frag1>_<id1>__<frag2>_<id2>" -> "vp_<frag1>_<id1>".
  for (const char* prefix : {"extvp_ss_", "extvp_os_", "extvp_so_"}) {
    size_t prefix_len = std::string_view(prefix).size();
    if (extvp_name.compare(0, prefix_len, prefix) != 0) continue;
    size_t sep = extvp_name.find("__", prefix_len);
    if (sep == std::string::npos) return "";
    return "vp_" + extvp_name.substr(prefix_len, sep - prefix_len);
  }
  return "";
}

std::string PropertyTableName() { return "pt"; }

std::string PropertyAuxTableName(const rdf::Dictionary& dict,
                                 rdf::TermId predicate) {
  return "pt_aux_" + PredicateFragment(dict.Decode(predicate)) + "_" +
         std::to_string(predicate);
}

}  // namespace s2rdf::core
