#ifndef S2RDF_CORE_LAYOUTS_H_
#define S2RDF_CORE_LAYOUTS_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/layout_names.h"
#include "engine/table.h"
#include "rdf/graph.h"
#include "storage/catalog.h"

// Builders for the relational RDF layouts of Secs. 4 and 5:
// triples table (4.1), vertical partitioning (4.2), property tables
// (4.3) and the paper's contribution, ExtVP (5). Each builder registers
// its tables — and, crucially for ExtVP, the statistics of tables it
// decides *not* to materialize — in a storage::Catalog.

namespace s2rdf::core {

// Deduplicated (s, o) rows per predicate, in first-appearance order.
// All layout builders consume this shared row stream, which guarantees
// that row indices agree across them — the bit-vector ExtVP store
// (extvp_bitmap.h) relies on its bitmaps matching the VP tables row for
// row.
struct VpRowData {
  std::vector<rdf::TermId> predicates;
  std::unordered_map<rdf::TermId,
                     std::vector<std::pair<rdf::TermId, rdf::TermId>>>
      rows;
};

VpRowData CollectVpRows(const rdf::Graph& graph);

// --- Triples table (Sec. 4.1) -----------------------------------------

// Builds TT(s, p, o) and registers it as "triples".
Status BuildTriplesTable(const rdf::Graph& graph, storage::Catalog* catalog);

// --- Vertical partitioning (Sec. 4.2) ----------------------------------

// Builds VP_p(s, o) for every predicate p.
Status BuildVpLayout(const rdf::Graph& graph, storage::Catalog* catalog);

// --- ExtVP (Sec. 5) -----------------------------------------------------

struct ExtVpOptions {
  // Materialize only tables with SF < sf_threshold (Sec. 5.3). The
  // default 1.0 materializes every table with 0 < SF < 1, i.e. "no
  // threshold" in the paper's terminology (tables equal to VP are never
  // stored).
  double sf_threshold = 1.0;
  // Correlation directions to precompute. OO is never precomputed.
  bool build_ss = true;
  bool build_os = true;
  bool build_so = true;
  // Run the two ExtVP sweeps (pair counting and table fill) as
  // predicate-parallel tasks on the shared TaskPool. The result is
  // byte-identical to the serial build — counting is additive and every
  // ExtVP_corr_p1|p2 table is written only by p1's task, in p1's row
  // order — so this is on by default; disable it to measure the serial
  // baseline (EXPERIMENTS.md, Table 2 discussion).
  bool parallel_build = true;
};

struct ExtVpBuildStats {
  // Number of (correlation, p1, p2) combinations examined.
  uint64_t tables_considered = 0;
  uint64_t tables_materialized = 0;
  uint64_t tables_empty = 0;     // SF = 0 (not stored; stats only).
  uint64_t tables_equal_vp = 0;  // SF = 1 (not stored; VP used instead).
  uint64_t tables_pruned = 0;    // 0 < SF < 1 but SF >= threshold.
  uint64_t tuples_materialized = 0;
  double build_seconds = 0.0;
};

// Builds the ExtVP semi-join reduction tables over an existing VP layout
// (BuildVpLayout must have run on the same catalog). Registers stats for
// every non-empty combination; materializes those within the threshold.
// A combination with no stats entry is empty (SF = 0) — the query
// compiler uses this for the statistics-only empty-result shortcut.
StatusOr<ExtVpBuildStats> BuildExtVpLayout(const rdf::Graph& graph,
                                           const ExtVpOptions& options,
                                           storage::Catalog* catalog);

// --- Lazy ("pay as you go") ExtVP ---------------------------------------

// Computes and registers the single reduction ExtVP_corr_p1|p2 from the
// catalog's VP tables — the "pay as you go" alternative Sec. 7 sketches:
// no load-time precomputation; each reduction is materialized the first
// time a query needs it and reused afterwards. Registers a stats entry
// in every case (including empty and SF = 1 reductions, which are not
// materialized), mirroring the eager builder's conventions. The
// `sf_threshold` prunes materialization exactly like the eager build.
Status MaterializeExtVpPair(const rdf::Dictionary& dict, Correlation corr,
                            rdf::TermId p1, rdf::TermId p2,
                            double sf_threshold, storage::Catalog* catalog);

// --- Property tables (Sec. 4.3) -----------------------------------------

enum class PropertyTableStrategy {
  // Multi-valued predicates duplicate rows (cross product per subject),
  // exactly as in the paper's Table 1. Correct but can explode; used for
  // small graphs and for reproducing Fig. 7.
  kDuplication,
  // Multi-valued predicates are moved to auxiliary two-column tables and
  // joined back in — the other strategy Sec. 4.3 names. Bounded size;
  // used for the Sempala-analogue baseline at benchmark scale.
  kAuxiliaryTables,
};

struct PropertyTableBuildStats {
  uint64_t pt_rows = 0;
  uint64_t aux_tables = 0;
  uint64_t aux_tuples = 0;
  std::vector<rdf::TermId> single_valued;  // Predicates inline in the PT.
  std::vector<rdf::TermId> multi_valued;   // Predicates in aux tables.
};

// Builds the unified property table "pt" whose columns are "s" plus one
// column per inlined predicate (column name = VP table name of that
// predicate, so lookups are uniform). Missing values are kNullTermId.
StatusOr<PropertyTableBuildStats> BuildPropertyTable(
    const rdf::Graph& graph, PropertyTableStrategy strategy,
    storage::Catalog* catalog);

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_LAYOUTS_H_
