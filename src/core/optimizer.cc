#include "core/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <limits>
#include <unordered_set>

namespace s2rdf::core {

namespace {

constexpr double kMaxRows = 1e30;
constexpr double kMinSelectivity = 1e-12;
// Subset DP state is O(2^n); beyond this the greedy path takes over
// regardless of dp_pattern_cap.
constexpr int kDpHardCap = 16;

JoinTreePtr MakeLeaf(const BgpAnalysis& analysis, int i) {
  auto t = std::make_unique<JoinTree>();
  t->pattern = i;
  t->est_rows = analysis.patterns[static_cast<size_t>(i)].scan_rows;
  t->est_cost = analysis.patterns[static_cast<size_t>(i)].scan_cost;
  return t;
}

JoinTreePtr MakeJoin(JoinTreePtr left, JoinTreePtr right, JoinAlgoChoice algo,
                     double est_rows, double est_cost) {
  auto t = std::make_unique<JoinTree>();
  t->left = std::move(left);
  t->right = std::move(right);
  t->algo = algo;
  t->est_rows = est_rows;
  t->est_cost = est_cost;
  return t;
}

uint64_t SubtreeMask(const JoinTree& t) {
  if (t.is_leaf()) return uint64_t{1} << t.pattern;
  return SubtreeMask(*t.left) | SubtreeMask(*t.right);
}

// Per-pattern bitmask of join-graph neighbors.
std::vector<uint64_t> NeighborMasks(const BgpAnalysis& analysis) {
  std::vector<uint64_t> nbr(analysis.patterns.size(), 0);
  for (const JoinEdge& e : analysis.edges) {
    nbr[e.a] |= uint64_t{1} << e.b;
    nbr[e.b] |= uint64_t{1} << e.a;
  }
  return nbr;
}

// connected[mask] == 1 iff the patterns in `mask` form a connected
// subgraph of the join graph: a BFS over join edges from the lowest
// member reaches every member.
std::vector<char> ConnectedMasks(const std::vector<uint64_t>& nbr, size_t n) {
  std::vector<char> connected(uint64_t{1} << n, 0);
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    uint64_t reach = mask & (~mask + 1);
    for (;;) {
      uint64_t next = reach;
      for (uint64_t m = reach; m != 0; m &= m - 1) {
        next |= nbr[static_cast<size_t>(std::countr_zero(m))] & mask;
      }
      if (next == reach) break;
      reach = next;
    }
    connected[mask] = reach == mask ? 1 : 0;
  }
  return connected;
}

}  // namespace

const char* OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kPaper:
      return "paper";
    case OptimizerMode::kCost:
      return "cost";
  }
  return "?";
}

StatusOr<OptimizerMode> ParseOptimizerMode(std::string_view name) {
  if (name == "paper") return OptimizerMode::kPaper;
  if (name == "cost") return OptimizerMode::kCost;
  return InvalidArgumentError("unknown optimizer mode: '" + std::string(name) +
                              "' (expected 'paper' or 'cost')");
}

const JoinEdge* FindEdge(const BgpAnalysis& analysis, size_t a, size_t b) {
  for (const JoinEdge& e : analysis.edges) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return &e;
  }
  return nullptr;
}

double EstimateSubsetRows(const BgpAnalysis& analysis, uint64_t mask) {
  double rows = 1.0;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    rows *= analysis.patterns[static_cast<size_t>(std::countr_zero(m))]
                .scan_rows;
    rows = std::min(rows, kMaxRows);
  }
  for (const JoinEdge& e : analysis.edges) {
    if ((mask >> e.a & 1) != 0 && (mask >> e.b & 1) != 0) {
      rows *= std::max(e.selectivity, kMinSelectivity);
    }
  }
  return std::clamp(rows, 0.0, kMaxRows);
}

std::unique_ptr<Optimizer> Optimizer::Create(const OptimizerOptions& options) {
  if (options.mode == OptimizerMode::kCost) {
    return std::make_unique<CostBasedOptimizer>(options);
  }
  return std::make_unique<PaperOptimizer>(options);
}

StatusOr<JoinTreePtr> PaperOptimizer::Optimize(
    const BgpAnalysis& analysis) const {
  const size_t n = analysis.patterns.size();
  if (n == 0) return InvalidArgumentError("empty basic graph pattern");

  // Algorithm 3 keeps the pattern order; Algorithm 4 orders by bound
  // values, then by selected-table size, avoiding cross joins. This is
  // the exact greedy loop of the pre-redesign compiler.
  std::vector<size_t> order;
  if (!options_.reorder_joins) {
    for (size_t i = 0; i < n; ++i) order.push_back(i);
  } else {
    std::vector<size_t> remaining;
    for (size_t i = 0; i < n; ++i) remaining.push_back(i);
    std::unordered_set<std::string> bound_vars;
    auto shares = [&](size_t idx) {
      for (const std::string& v : analysis.patterns[idx].variables) {
        if (bound_vars.contains(v)) return true;
      }
      return false;
    };
    while (!remaining.empty()) {
      std::vector<size_t> connected;
      for (size_t idx : remaining) {
        if (bound_vars.empty() || shares(idx)) connected.push_back(idx);
      }
      if (connected.empty()) connected = remaining;  // Forced cross join.
      size_t best = connected[0];
      for (size_t idx : connected) {
        const int bc_best = analysis.patterns[best].bound_count;
        const int bc_idx = analysis.patterns[idx].bound_count;
        if (bc_idx > bc_best ||
            (bc_idx == bc_best && analysis.patterns[idx].choice.rows <
                                      analysis.patterns[best].choice.rows)) {
          best = idx;
        }
      }
      order.push_back(best);
      remaining.erase(std::find(remaining.begin(), remaining.end(), best));
      for (const std::string& v : analysis.patterns[best].variables) {
        bound_vars.insert(v);
      }
    }
  }

  // Left-deep hash joins in that order, annotated with subset estimates.
  CostModel cost_model;
  JoinTreePtr tree = MakeLeaf(analysis, static_cast<int>(order[0]));
  uint64_t mask = uint64_t{1} << order[0];
  double cost = tree->est_cost;
  for (size_t k = 1; k < order.size(); ++k) {
    JoinTreePtr leaf = MakeLeaf(analysis, static_cast<int>(order[k]));
    mask |= uint64_t{1} << order[k];
    const double out =
        order.size() <= 63 ? EstimateSubsetRows(analysis, mask) : kMaxRows;
    cost += leaf->est_cost +
            cost_model.HashJoinCost(tree->est_rows, leaf->est_rows, out);
    tree = MakeJoin(std::move(tree), std::move(leaf), JoinAlgoChoice::kHash,
                    out, cost);
  }
  return tree;
}

namespace {

// Leaf-level semi-join selection: reduce a large scan by the projected
// join column of a smaller neighbor when the statistics promise a big
// cut. This is exactly the ExtVP reduction computed at query time — it
// fires where the precomputed table is unavailable (pruned by the SF
// threshold, quarantined, or a layout without reductions) but the SF
// statistics still exist.
void AddReducers(JoinTree* node, const BgpAnalysis& analysis,
                 const OptimizerOptions& options, uint64_t sibling_mask) {
  if (!node->is_leaf()) {
    const uint64_t left_mask = SubtreeMask(*node->left);
    const uint64_t right_mask = SubtreeMask(*node->right);
    AddReducers(node->left.get(), analysis, options, right_mask);
    AddReducers(node->right.get(), analysis, options, left_mask);
    return;
  }
  const size_t i = static_cast<size_t>(node->pattern);
  const PatternInfo& info = analysis.patterns[i];
  if (info.scan_rows <
      static_cast<double>(options.semi_join_min_rows)) {
    return;
  }
  struct Candidate {
    double keep;
    size_t j;
  };
  std::vector<Candidate> candidates;
  for (const JoinEdge& e : analysis.edges) {
    if (e.a != i && e.b != i) continue;
    if (e.shared_vars != 1) continue;  // SemiJoin is single-column.
    const size_t j = e.a == i ? e.b : e.a;
    const double keep = e.a == i ? e.keep_a : e.keep_b;
    // Reducing by a pattern already on the other side of this leaf's
    // join is nearly pure overhead: the join enforces that variable
    // anyway, so the reducer saves only failed probe lookups while
    // paying a scan plus a materialized copy of the survivors. Only
    // reductions by patterns joined *later* cut emitted rows.
    if ((sibling_mask >> j & 1) != 0) continue;
    // Worthwhile only for a substantial cut by a smaller input.
    if (keep > 0.5) continue;
    if (analysis.patterns[j].scan_rows > info.scan_rows) continue;
    candidates.push_back({keep, j});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.keep != b.keep ? a.keep < b.keep : a.j < b.j;
            });
  if (candidates.size() > 2) candidates.resize(2);  // Diminishing returns.
  for (const Candidate& c : candidates) {
    node->reducers.push_back(static_cast<int>(c.j));
  }
}

}  // namespace

StatusOr<JoinTreePtr> CostBasedOptimizer::Optimize(
    const BgpAnalysis& analysis) const {
  const size_t n = analysis.patterns.size();
  if (n == 0) return InvalidArgumentError("empty basic graph pattern");
  if (n > 63) {
    // Subset masks cap out; such BGPs are degenerate anyway.
    return PaperOptimizer(options_).Optimize(analysis);
  }

  const std::vector<uint64_t> nbr = NeighborMasks(analysis);
  JoinTreePtr tree;

  const int dp_cap =
      std::min(options_.dp_pattern_cap, kDpHardCap);
  const uint64_t full = (uint64_t{1} << n) - 1;
  std::vector<char> connected;
  if (static_cast<int>(n) <= dp_cap && n >= 2) {
    connected = ConnectedMasks(nbr, n);
  }
  if (!connected.empty() && connected[full] != 0) {
    // Exact enumeration over *connected* pattern subsets: for each, the
    // cheapest way to split it into two connected joined halves (bushy
    // trees allowed — any connected subgraph has such a split). Both
    // split orders are tried — hash join builds on the right, so sides
    // are not symmetric. Disconnected BGPs (cross joins) take the
    // greedy path below instead.
    struct DpEntry {
      double cost = std::numeric_limits<double>::infinity();
      double rows = 0.0;
      uint64_t left_mask = 0;  // 0 marks singletons.
      JoinAlgoChoice algo = JoinAlgoChoice::kHash;
    };
    std::vector<DpEntry> dp(uint64_t{1} << n);
    for (size_t i = 0; i < n; ++i) {
      DpEntry& e = dp[uint64_t{1} << i];
      e.cost = analysis.patterns[i].scan_cost;
      e.rows = analysis.patterns[i].scan_rows;
    }
    for (uint64_t mask = 1; mask <= full; ++mask) {
      if (std::popcount(mask) < 2 || connected[mask] == 0) continue;
      DpEntry best;
      best.rows = EstimateSubsetRows(analysis, mask);
      const auto consider = [&](uint64_t l, uint64_t r) {
        const double hash =
            cost_model_.HashJoinCost(dp[l].rows, dp[r].rows, best.rows);
        const double merge =
            cost_model_.SortMergeJoinCost(dp[l].rows, dp[r].rows, best.rows);
        const double join = std::min(hash, merge);
        const double cost = dp[l].cost + dp[r].cost + join;
        if (cost < best.cost) {
          best.cost = cost;
          best.left_mask = l;
          best.algo = merge < hash ? JoinAlgoChoice::kSortMerge
                                   : JoinAlgoChoice::kHash;
        }
      };
      // Enumerate each unordered split once (the half holding the
      // lowest pattern), trying both orientations.
      const uint64_t low = mask & (~mask + 1);
      const uint64_t rest = mask ^ low;
      uint64_t s = rest;
      do {
        s = (s - 1) & rest;
        const uint64_t sub = s | low;
        const uint64_t other = mask ^ sub;
        if (connected[sub] == 0 || connected[other] == 0) continue;
        // Bound: the join itself cannot cost less than zero, so a
        // split whose halves already exceed the incumbent loses in
        // either orientation.
        if (dp[sub].cost + dp[other].cost >= best.cost) continue;
        consider(sub, other);
        consider(other, sub);
      } while (s != 0);
      dp[mask] = best;
    }
    // Reconstruct the winning tree.
    auto build = [&](auto&& self, uint64_t mask) -> JoinTreePtr {
      if (std::popcount(mask) == 1) {
        return MakeLeaf(analysis, std::countr_zero(mask));
      }
      const DpEntry& e = dp[mask];
      return MakeJoin(self(self, e.left_mask), self(self, mask ^ e.left_mask),
                      e.algo, e.rows, e.cost);
    };
    tree = build(build, full);
  } else if (n == 1) {
    tree = MakeLeaf(analysis, 0);
  } else {
    // Greedy fallback for very wide BGPs and for disconnected join
    // graphs (cross joins): start from the smallest scan, repeatedly
    // absorb the connected pattern minimizing the estimated
    // intermediate result (left-deep).
    size_t seed = 0;
    for (size_t i = 1; i < n; ++i) {
      if (analysis.patterns[i].scan_rows <
          analysis.patterns[seed].scan_rows) {
        seed = i;
      }
    }
    tree = MakeLeaf(analysis, static_cast<int>(seed));
    uint64_t mask = uint64_t{1} << seed;
    double cost = tree->est_cost;
    std::vector<size_t> remaining;
    for (size_t i = 0; i < n; ++i) {
      if (i != seed) remaining.push_back(i);
    }
    while (!remaining.empty()) {
      size_t best = remaining.size();  // Index into `remaining`.
      double best_rows = std::numeric_limits<double>::infinity();
      bool best_connected = false;
      for (size_t k = 0; k < remaining.size(); ++k) {
        const size_t idx = remaining[k];
        const bool connected = (nbr[idx] & mask) != 0;
        if (best_connected && !connected) continue;
        const double rows =
            EstimateSubsetRows(analysis, mask | uint64_t{1} << idx);
        if (best == remaining.size() || (connected && !best_connected) ||
            rows < best_rows) {
          best = k;
          best_rows = rows;
          best_connected = connected;
        }
      }
      const size_t idx = remaining[best];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
      JoinTreePtr leaf = MakeLeaf(analysis, static_cast<int>(idx));
      const JoinAlgoChoice algo = cost_model_.ChooseJoinAlgo(
          tree->est_rows, leaf->est_rows, best_rows);
      cost += leaf->est_cost + cost_model_.JoinCost(algo, tree->est_rows,
                                                    leaf->est_rows, best_rows);
      mask |= uint64_t{1} << idx;
      tree = MakeJoin(std::move(tree), std::move(leaf), algo, best_rows, cost);
    }
  }

  if (options_.enable_semi_join && n >= 2) {
    AddReducers(tree.get(), analysis, options_, 0);
  }
  return tree;
}

}  // namespace s2rdf::core
