#ifndef S2RDF_CORE_COST_MODEL_H_
#define S2RDF_CORE_COST_MODEL_H_

// Cost model behind the cost-based optimizer: abstract work units per
// operator, calibrated against the engine's actual implementations in
// engine/operators.cc. The absolute scale is irrelevant — the DP in
// core/optimizer.cc only compares plans — but the *shape* matters:
//
//   scan            rows                 (one pass over the table)
//   hash join       2R(1 + R/2^20) + L + out
//                   (build on the RIGHT input, matching engine::HashJoin;
//                   the quadratic-ish tail charges for cache misses on
//                   huge build tables)
//   sort-merge join (L log L + R log R)/2 + L + R + out
//   semi join       L + R                (hash build on the right column)
//
// Hash wins for all but very large build sides; the crossover is what
// ChooseJoinAlgo encodes, deterministically, from estimated rows alone.

namespace s2rdf::core {

enum class JoinAlgoChoice { kHash, kSortMerge };

class CostModel {
 public:
  double ScanCost(double rows) const;
  double HashJoinCost(double left_rows, double right_rows,
                      double out_rows) const;
  double SortMergeJoinCost(double left_rows, double right_rows,
                           double out_rows) const;
  double SemiJoinCost(double left_rows, double right_rows) const;

  // The cheaper of the two join implementations for these estimates.
  // Ties break to hash join (the engine's canonical-order default).
  JoinAlgoChoice ChooseJoinAlgo(double left_rows, double right_rows,
                                double out_rows) const;
  double JoinCost(JoinAlgoChoice algo, double left_rows, double right_rows,
                  double out_rows) const;
};

}  // namespace s2rdf::core

#endif  // S2RDF_CORE_COST_MODEL_H_
