#ifndef S2RDF_RDF_NTRIPLES_H_
#define S2RDF_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/env.h"
#include "common/status.h"
#include "rdf/graph.h"

// Line-based N-Triples reader/writer. This is the dataset interchange
// format used by WatDiv and by the paper's loading pipeline.

namespace s2rdf::rdf {

// Parses N-Triples `content` and appends all statements to `graph`.
// Blank lines and `#` comment lines are skipped. Returns the first parse
// error with its 1-based line number.
Status ParseNTriples(std::string_view content, Graph* graph);

// Serializes `graph` in N-Triples syntax (one statement per line).
std::string WriteNTriples(const Graph& graph);

// Loads an N-Triples file from disk into `graph`. `env` is the file-I/O
// environment (Env::Default() when null), so dataset loading sits
// inside the fault-injection matrix like every other I/O path.
Status LoadNTriplesFile(const std::string& path, Graph* graph,
                        Env* env = nullptr);

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_NTRIPLES_H_
