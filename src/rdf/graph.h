#ifndef S2RDF_RDF_GRAPH_H_
#define S2RDF_RDF_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"

// In-memory RDF graph: a triple list plus the dictionary that encodes it.
// This is the input to every relational-layout builder in src/core and
// src/baselines.

namespace s2rdf::rdf {

class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // Adds a triple of already-canonical N-Triples term strings
  // (e.g. "<http://ex/A>", "\"42\"").
  void AddCanonical(std::string_view subject, std::string_view predicate,
                    std::string_view object);

  // Adds a triple of Term objects.
  void Add(const Term& subject, const Term& predicate, const Term& object);

  // Adds a triple of plain IRIs given without angle brackets. Convenience
  // for tests and the running example.
  void AddIris(std::string_view subject, std::string_view predicate,
               std::string_view object);

  const std::vector<Triple>& triples() const { return triples_; }
  size_t NumTriples() const { return triples_.size(); }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }

  // Distinct predicate ids, in first-appearance order.
  std::vector<TermId> DistinctPredicates() const;

 private:
  Dictionary dictionary_;
  std::vector<Triple> triples_;
};

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_GRAPH_H_
