#ifndef S2RDF_RDF_TERM_H_
#define S2RDF_RDF_TERM_H_

#include <string>
#include <string_view>

#include "common/status.h"

// RDF term model. Terms are canonicalized to their N-Triples surface
// syntax (`<iri>`, `"literal"`, `"literal"^^<datatype>`, `"literal"@lang`,
// `_:blank`) and this canonical string is what the Dictionary interns, so
// equal terms always share a single id.

namespace s2rdf::rdf {

enum class TermKind {
  kIri,
  kLiteral,
  kBlankNode,
};

// An RDF term (IRI, literal or blank node).
//
// Example:
//   Term t = Term::Literal("42", "http://www.w3.org/2001/XMLSchema#integer");
//   t.ToNTriples();  // "42"^^<http://www.w3.org/2001/XMLSchema#integer>
class Term {
 public:
  // Factory functions; `iri` / `name` / `lexical` are raw (unescaped).
  static Term Iri(std::string iri);
  static Term Blank(std::string name);
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string language = "");

  // Parses a single N-Triples term token (e.g. `<http://x>` or `"a b"@en`).
  static StatusOr<Term> Parse(std::string_view token);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlankNode; }

  // Raw value: the IRI string, the blank node name, or the (unescaped)
  // literal lexical form.
  const std::string& value() const { return value_; }
  // Datatype IRI for typed literals; empty otherwise.
  const std::string& datatype() const { return datatype_; }
  // Language tag for language-tagged literals; empty otherwise.
  const std::string& language() const { return language_; }

  // Renders the canonical N-Triples form, escaping literal contents.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.value_ == b.value_ &&
           a.datatype_ == b.datatype_ && a.language_ == b.language_;
  }

 private:
  Term(TermKind kind, std::string value, std::string datatype,
       std::string language)
      : kind_(kind),
        value_(std::move(value)),
        datatype_(std::move(datatype)),
        language_(std::move(language)) {}

  TermKind kind_;
  std::string value_;
  std::string datatype_;
  std::string language_;
};

// Escapes a literal lexical form per N-Triples rules (\\, \", \n, \r, \t).
std::string EscapeLiteral(std::string_view raw);
// Reverses EscapeLiteral. Unknown escapes are passed through verbatim.
std::string UnescapeLiteral(std::string_view escaped);

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_TERM_H_
