#ifndef S2RDF_RDF_TRIPLE_H_
#define S2RDF_RDF_TRIPLE_H_

#include <cstdint>

#include "common/hash.h"
#include "rdf/dictionary.h"

namespace s2rdf::rdf {

// A dictionary-encoded RDF statement (s, p, o).
struct Triple {
  TermId subject;
  TermId predicate;
  TermId object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = MixHash64(t.subject);
    h = HashCombine(h, t.predicate);
    h = HashCombine(h, t.object);
    return static_cast<size_t>(h);
  }
};

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_TRIPLE_H_
