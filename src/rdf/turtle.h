#ifndef S2RDF_RDF_TURTLE_H_
#define S2RDF_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "common/env.h"
#include "common/status.h"
#include "rdf/graph.h"

// Turtle (Terse RDF Triple Language) reader for the subset datasets are
// commonly published in (WatDiv itself ships Turtle):
//
//   @prefix / PREFIX and @base / BASE declarations; predicate-object
//   lists (';') and object lists (','); the 'a' keyword; IRIs, prefixed
//   names and blank-node labels; plain, language-tagged, typed,
//   single-quoted and long ("""...""") literals; numeric and boolean
//   shorthand literals; '#' comments.
//
// Not supported (returns a parse error): anonymous blank nodes `[...]`,
// collections `(...)`, and full RFC 3986 relative-IRI resolution (@base
// is applied by simple concatenation).

namespace s2rdf::rdf {

// Parses Turtle `content` into `graph`. Errors carry 1-based line
// numbers.
Status ParseTurtle(std::string_view content, Graph* graph);

// Loads a Turtle file from disk into `graph`. `env` is the file-I/O
// environment (Env::Default() when null).
Status LoadTurtleFile(const std::string& path, Graph* graph,
                      Env* env = nullptr);

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_TURTLE_H_
