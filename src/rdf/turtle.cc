#include "rdf/turtle.h"

#include <cctype>
#include <map>

#include "common/env.h"
#include "common/strings.h"
#include "rdf/term.h"

namespace s2rdf::rdf {

namespace {

constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class TurtleParser {
 public:
  TurtleParser(std::string_view input, Graph* graph)
      : input_(input), graph_(*graph) {}

  Status Run() {
    SkipWhitespace();
    while (pos_ < input_.size()) {
      S2RDF_RETURN_IF_ERROR(ParseStatement());
      SkipWhitespace();
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("turtle parse error at line " +
                                std::to_string(line_) + ": " + message);
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (Peek() == '\n') ++line_;
    ++pos_;
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      char c = Peek();
      if (c == '#') {
        while (pos_ < input_.size() && Peek() != '\n') Advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else {
        return;
      }
    }
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (input_.size() - pos_ < keyword.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(input_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    // Must be followed by whitespace or an IRI/name start.
    char next = PeekAt(keyword.size());
    if (next != '\0' && !std::isspace(static_cast<unsigned char>(next)) &&
        next != '<') {
      return false;
    }
    for (size_t i = 0; i < keyword.size(); ++i) Advance();
    return true;
  }

  Status Expect(char c) {
    if (Peek() != c) {
      return Error(std::string("expected '") + c + "' but found '" +
                   (Peek() == '\0' ? std::string("<eof>")
                                   : std::string(1, Peek())) +
                   "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ParseStatement() {
    if (Peek() == '@') {
      Advance();
      if (ConsumeKeyword("prefix")) {
        S2RDF_RETURN_IF_ERROR(ParsePrefixDecl());
        SkipWhitespace();
        return Expect('.');
      }
      if (ConsumeKeyword("base")) {
        S2RDF_RETURN_IF_ERROR(ParseBaseDecl());
        SkipWhitespace();
        return Expect('.');
      }
      return Error("unknown @-directive");
    }
    // SPARQL-style PREFIX/BASE (no trailing dot).
    if ((Peek() == 'P' || Peek() == 'p') && ConsumeKeyword("prefix")) {
      return ParsePrefixDecl();
    }
    if ((Peek() == 'B' || Peek() == 'b') && ConsumeKeyword("base")) {
      return ParseBaseDecl();
    }
    return ParseTriples();
  }

  Status ParsePrefixDecl() {
    SkipWhitespace();
    // prefix name up to ':'.
    size_t start = pos_;
    while (pos_ < input_.size() && Peek() != ':' &&
           !std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    std::string prefix(input_.substr(start, pos_ - start));
    S2RDF_RETURN_IF_ERROR(Expect(':'));
    SkipWhitespace();
    S2RDF_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
    prefixes_[prefix] = iri;
    return Status::Ok();
  }

  Status ParseBaseDecl() {
    SkipWhitespace();
    S2RDF_ASSIGN_OR_RETURN(base_, ParseIriRef());
    return Status::Ok();
  }

  StatusOr<std::string> ParseIriRef() {
    S2RDF_RETURN_IF_ERROR(Expect('<'));
    std::string iri;
    while (pos_ < input_.size() && Peek() != '>') {
      if (Peek() == '\n') return Error("newline inside IRI");
      iri += Peek();
      Advance();
    }
    S2RDF_RETURN_IF_ERROR(Expect('>'));
    // Simple @base handling: prepend for clearly-relative IRIs.
    if (!base_.empty() && iri.find("://") == std::string::npos &&
        !StartsWith(iri, "urn:") && !StartsWith(iri, "mailto:")) {
      return base_ + iri;
    }
    return iri;
  }

  // Parses a subject/predicate/object term into canonical N-Triples
  // form. `as_predicate` allows the 'a' keyword.
  StatusOr<std::string> ParseTerm(bool as_predicate) {
    SkipWhitespace();
    char c = Peek();
    if (c == '<') {
      S2RDF_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri)).ToNTriples();
    }
    if (c == '"' || c == '\'') return ParseLiteral();
    if (c == '_' && PeekAt(1) == ':') {
      Advance();
      Advance();
      size_t start = pos_;
      while (pos_ < input_.size() && (std::isalnum(static_cast<unsigned char>(
                                          Peek())) ||
                                      Peek() == '_' || Peek() == '-')) {
        Advance();
      }
      return Term::Blank(std::string(input_.substr(start, pos_ - start)))
          .ToNTriples();
    }
    if (c == '[') return Error("anonymous blank nodes are not supported");
    if (c == '(') return Error("collections are not supported");
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
        c == '-' ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1))))) {
      return ParseNumber();
    }
    // Keyword 'a', boolean, or prefixed name.
    if (as_predicate && c == 'a' &&
        (std::isspace(static_cast<unsigned char>(PeekAt(1))) ||
         PeekAt(1) == '<')) {
      Advance();
      return Term::Iri(std::string(kRdfType)).ToNTriples();
    }
    return ParsePrefixedNameOrBoolean();
  }

  StatusOr<std::string> ParseLiteral() {
    char quote = Peek();
    bool long_string = PeekAt(1) == quote && PeekAt(2) == quote;
    std::string lexical;
    if (long_string) {
      Advance();
      Advance();
      Advance();
      bool closed = false;
      while (pos_ < input_.size()) {
        if (Peek() == quote && PeekAt(1) == quote && PeekAt(2) == quote) {
          Advance();
          Advance();
          Advance();
          closed = true;
          break;
        }
        if (Peek() == '\\' && pos_ + 1 < input_.size()) {
          lexical += Peek();
          Advance();
        }
        lexical += Peek();
        Advance();
      }
      if (!closed) return Error("unterminated long string literal");
    } else {
      Advance();
      while (pos_ < input_.size() && Peek() != quote) {
        if (Peek() == '\n') return Error("newline in string literal");
        if (Peek() == '\\') {
          lexical += Peek();
          Advance();
          if (pos_ >= input_.size()) break;
        }
        lexical += Peek();
        Advance();
      }
      S2RDF_RETURN_IF_ERROR(Expect(quote));
    }
    std::string raw = UnescapeLiteral(lexical);

    if (Peek() == '@') {
      Advance();
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '-')) {
        Advance();
      }
      return Term::Literal(std::move(raw), "",
                           std::string(input_.substr(start, pos_ - start)))
          .ToNTriples();
    }
    if (Peek() == '^' && PeekAt(1) == '^') {
      Advance();
      Advance();
      std::string datatype;
      if (Peek() == '<') {
        S2RDF_ASSIGN_OR_RETURN(datatype, ParseIriRef());
      } else {
        S2RDF_ASSIGN_OR_RETURN(std::string expanded,
                               ParsePrefixedIri());
        datatype = std::move(expanded);
      }
      return Term::Literal(std::move(raw), std::move(datatype)).ToNTriples();
    }
    return Term::Literal(std::move(raw)).ToNTriples();
  }

  StatusOr<std::string> ParseNumber() {
    size_t start = pos_;
    bool has_dot = false;
    bool has_exp = false;
    if (Peek() == '+' || Peek() == '-') Advance();
    while (pos_ < input_.size()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '.' &&
                 std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
        has_dot = true;
        Advance();
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        Advance();
        if (Peek() == '+' || Peek() == '-') Advance();
      } else {
        break;
      }
    }
    std::string digits(input_.substr(start, pos_ - start));
    std::string_view datatype =
        has_exp ? kXsdDouble : (has_dot ? kXsdDecimal : kXsdInteger);
    return Term::Literal(std::move(digits), std::string(datatype))
        .ToNTriples();
  }

  // Expands "pre:local" (or ":local") to the full IRI string.
  StatusOr<std::string> ParsePrefixedIri() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        // A '.' at the end of a statement is punctuation, not name.
        if (c == '.') {
          char next = PeekAt(1);
          if (!(std::isalnum(static_cast<unsigned char>(next)) ||
                next == '_' || next == '-')) {
            break;
          }
        }
        Advance();
      } else {
        break;
      }
    }
    std::string token(input_.substr(start, pos_ - start));
    size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Error("expected prefixed name, found '" + token + "'");
    }
    std::string prefix = token.substr(0, colon);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undeclared prefix '" + prefix + ":'");
    }
    return it->second + token.substr(colon + 1);
  }

  StatusOr<std::string> ParsePrefixedNameOrBoolean() {
    // Booleans are bare words.
    if (ConsumeKeyword("true")) {
      return Term::Literal("true", std::string(kXsdBoolean)).ToNTriples();
    }
    if (ConsumeKeyword("false")) {
      return Term::Literal("false", std::string(kXsdBoolean)).ToNTriples();
    }
    S2RDF_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedIri());
    return Term::Iri(std::move(iri)).ToNTriples();
  }

  Status ParseTriples() {
    S2RDF_ASSIGN_OR_RETURN(std::string subject,
                           ParseTerm(/*as_predicate=*/false));
    while (true) {
      S2RDF_ASSIGN_OR_RETURN(std::string predicate,
                             ParseTerm(/*as_predicate=*/true));
      if (predicate.front() != '<') {
        return Error("predicate must be an IRI");
      }
      while (true) {
        S2RDF_ASSIGN_OR_RETURN(std::string object,
                               ParseTerm(/*as_predicate=*/false));
        graph_.AddCanonical(subject, predicate, object);
        SkipWhitespace();
        if (Peek() == ',') {
          Advance();
          continue;
        }
        break;
      }
      if (Peek() == ';') {
        Advance();
        SkipWhitespace();
        // Dangling ';' before '.' is legal.
        if (Peek() == '.') break;
        continue;
      }
      break;
    }
    SkipWhitespace();
    return Expect('.');
  }

  std::string_view input_;
  Graph& graph_;
  size_t pos_ = 0;
  int line_ = 1;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Status ParseTurtle(std::string_view content, Graph* graph) {
  TurtleParser parser(content, graph);
  return parser.Run();
}

Status LoadTurtleFile(const std::string& path, Graph* graph, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string content;
  S2RDF_RETURN_IF_ERROR(env->ReadFile(path, &content));
  return ParseTurtle(content, graph);
}

}  // namespace s2rdf::rdf
