#include "rdf/dictionary.h"

#include <cstring>

#include "common/check.h"
#include "common/mutex.h"

namespace s2rdf::rdf {

TermId Dictionary::Encode(std::string_view canonical) {
  std::string key(canonical);
  {
    // Fast path: the term is usually already interned (shared lock).
    ReaderLock lock(&mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  WriterLock lock(&mu_);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;  // Raced with another writer.
  TermId id = static_cast<TermId>(by_id_.size());
  auto [inserted, _] = ids_.emplace(std::move(key), id);
  by_id_.push_back(&inserted->first);
  return id;
}

std::optional<TermId> Dictionary::Find(std::string_view canonical) const {
  ReaderLock lock(&mu_);
  auto it = ids_.find(std::string(canonical));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::Decode(TermId id) const {
  // The returned reference stays valid after unlock: map nodes are
  // stable and entries are never erased.
  ReaderLock lock(&mu_);
  S2RDF_CHECK(id < by_id_.size());
  return *by_id_[id];
}

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool GetU32(std::string_view blob, size_t* pos, uint32_t* v) {
  if (*pos + 4 > blob.size()) return false;
  std::memcpy(v, blob.data() + *pos, 4);
  *pos += 4;
  return true;
}

}  // namespace

std::string Dictionary::Serialize() const {
  ReaderLock lock(&mu_);
  std::string out;
  PutU32(&out, static_cast<uint32_t>(by_id_.size()));
  for (const std::string* term : by_id_) {
    PutU32(&out, static_cast<uint32_t>(term->size()));
    out += *term;
  }
  return out;
}

StatusOr<Dictionary> Dictionary::Deserialize(std::string_view blob) {
  Dictionary dict;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetU32(blob, &pos, &count)) {
    return InvalidArgumentError("dictionary blob truncated (count)");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!GetU32(blob, &pos, &len) || pos + len > blob.size()) {
      return InvalidArgumentError("dictionary blob truncated (entry)");
    }
    TermId id = dict.Encode(blob.substr(pos, len));
    if (id != i) {
      return InvalidArgumentError("dictionary blob has duplicate terms");
    }
    pos += len;
  }
  return dict;
}

}  // namespace s2rdf::rdf
