#include "rdf/graph.h"

#include <unordered_set>

namespace s2rdf::rdf {

void Graph::AddCanonical(std::string_view subject, std::string_view predicate,
                         std::string_view object) {
  Triple t;
  t.subject = dictionary_.Encode(subject);
  t.predicate = dictionary_.Encode(predicate);
  t.object = dictionary_.Encode(object);
  triples_.push_back(t);
}

void Graph::Add(const Term& subject, const Term& predicate,
                const Term& object) {
  AddCanonical(subject.ToNTriples(), predicate.ToNTriples(),
               object.ToNTriples());
}

void Graph::AddIris(std::string_view subject, std::string_view predicate,
                    std::string_view object) {
  AddCanonical("<" + std::string(subject) + ">",
               "<" + std::string(predicate) + ">",
               "<" + std::string(object) + ">");
}

std::vector<TermId> Graph::DistinctPredicates() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t.predicate).second) out.push_back(t.predicate);
  }
  return out;
}

}  // namespace s2rdf::rdf
