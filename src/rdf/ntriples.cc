#include "rdf/ntriples.h"

#include "common/env.h"
#include "common/strings.h"
#include "rdf/term.h"

namespace s2rdf::rdf {

namespace {

// Scans one term token starting at `*pos` in `line`; advances `*pos` past
// the token and any following whitespace.
StatusOr<std::string> ScanToken(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
  if (*pos >= line.size()) return InvalidArgumentError("unexpected end of line");
  size_t start = *pos;
  char first = line[start];
  if (first == '<') {
    size_t end = line.find('>', start);
    if (end == std::string_view::npos) {
      return InvalidArgumentError("unterminated IRI");
    }
    *pos = end + 1;
    return std::string(line.substr(start, end - start + 1));
  }
  if (first == '"') {
    size_t i = start + 1;
    while (i < line.size()) {
      if (line[i] == '\\') {
        i += 2;
        continue;
      }
      if (line[i] == '"') break;
      ++i;
    }
    if (i >= line.size()) return InvalidArgumentError("unterminated literal");
    ++i;  // Past the closing quote.
    // Optional @lang or ^^<datatype> suffix.
    if (i < line.size() && line[i] == '@') {
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    } else if (i + 1 < line.size() && line[i] == '^' && line[i + 1] == '^') {
      size_t end = line.find('>', i);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated datatype IRI");
      }
      i = end + 1;
    }
    *pos = i;
    return std::string(line.substr(start, i - start));
  }
  // Blank node or malformed token: scan to whitespace.
  size_t i = start;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  *pos = i;
  return std::string(line.substr(start, i - start));
}

Status ParseLine(std::string_view line, Graph* graph) {
  size_t pos = 0;
  S2RDF_ASSIGN_OR_RETURN(std::string subject, ScanToken(line, &pos));
  S2RDF_ASSIGN_OR_RETURN(std::string predicate, ScanToken(line, &pos));
  S2RDF_ASSIGN_OR_RETURN(std::string object, ScanToken(line, &pos));
  std::string_view rest = StripWhitespace(line.substr(pos));
  if (rest != ".") {
    return InvalidArgumentError("statement does not end with '.'");
  }
  // Validate by round-tripping through the Term parser; this also
  // canonicalizes literal escapes.
  S2RDF_ASSIGN_OR_RETURN(rdf::Term s, Term::Parse(subject));
  S2RDF_ASSIGN_OR_RETURN(rdf::Term p, Term::Parse(predicate));
  S2RDF_ASSIGN_OR_RETURN(rdf::Term o, Term::Parse(object));
  if (!p.is_iri()) return InvalidArgumentError("predicate must be an IRI");
  graph->Add(s, p, o);
  return Status::Ok();
}

}  // namespace

Status ParseNTriples(std::string_view content, Graph* graph) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string_view line = StripWhitespace(content.substr(start, end - start));
    ++line_no;
    if (!line.empty() && line.front() != '#') {
      Status s = ParseLine(line, graph);
      if (!s.ok()) {
        return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                    s.message());
      }
    }
    if (end == content.size()) break;
    start = end + 1;
  }
  return Status::Ok();
}

std::string WriteNTriples(const Graph& graph) {
  std::string out;
  const Dictionary& dict = graph.dictionary();
  for (const Triple& t : graph.triples()) {
    out += dict.Decode(t.subject);
    out += ' ';
    out += dict.Decode(t.predicate);
    out += ' ';
    out += dict.Decode(t.object);
    out += " .\n";
  }
  return out;
}

Status LoadNTriplesFile(const std::string& path, Graph* graph, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string content;
  S2RDF_RETURN_IF_ERROR(env->ReadFile(path, &content));
  return ParseNTriples(content, graph);
}

}  // namespace s2rdf::rdf
