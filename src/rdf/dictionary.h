#ifndef S2RDF_RDF_DICTIONARY_H_
#define S2RDF_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Dictionary encoding of RDF terms. All layouts (triples table, VP, ExtVP,
// property tables, permutation indexes) operate on dense 32-bit term ids;
// the dictionary is the single source of truth mapping ids back to the
// canonical N-Triples strings. This mirrors the dictionary encoding that
// Spark SQL's Parquet representation applies in the paper's setup.

namespace s2rdf::rdf {

// Dense id of an interned term. Id 0 is a valid term id.
using TermId = uint32_t;

// Sentinel used by the engine for "unbound" (e.g. OPTIONAL non-matches).
inline constexpr TermId kNullTermId = 0xffffffffu;

// Interns canonical term strings and assigns dense ids in insertion
// order. Encode/Find/Decode are thread-safe (reader/writer locked) so
// concurrent queries can mint aggregate literals and decode results
// against one shared instance; moving a Dictionary is NOT safe while
// other threads use either operand.
class Dictionary {
 public:
  Dictionary() = default;

  // Move-only: the id map references heap nodes owned by this instance.
  // Moves require external exclusion (documented above), so they are
  // exempt from the lock analysis.
  Dictionary(Dictionary&& other) noexcept S2RDF_NO_THREAD_SAFETY_ANALYSIS
      : ids_(std::move(other.ids_)), by_id_(std::move(other.by_id_)) {}
  Dictionary& operator=(Dictionary&& other) noexcept
      S2RDF_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      ids_ = std::move(other.ids_);
      by_id_ = std::move(other.by_id_);
    }
    return *this;
  }
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  // Returns the id for `canonical`, interning it if new.
  TermId Encode(std::string_view canonical);

  // Returns the id if `canonical` is already interned.
  std::optional<TermId> Find(std::string_view canonical) const;

  // Returns the canonical string for `id`. `id` must be valid.
  const std::string& Decode(TermId id) const;

  size_t size() const {
    ReaderLock lock(&mu_);
    return by_id_.size();
  }

  // Serializes to / from a length-prefixed binary blob.
  std::string Serialize() const;
  static StatusOr<Dictionary> Deserialize(std::string_view blob);

 private:
  // Guards ids_/by_id_: Encode takes it exclusively, lookups shared.
  mutable SharedMutex mu_;
  // Node-stable map; by_id_ points into the map's keys.
  std::unordered_map<std::string, TermId> ids_ S2RDF_GUARDED_BY(mu_);
  std::vector<const std::string*> by_id_ S2RDF_GUARDED_BY(mu_);
};

}  // namespace s2rdf::rdf

#endif  // S2RDF_RDF_DICTIONARY_H_
