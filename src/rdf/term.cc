#include "rdf/term.h"

#include <utility>

namespace s2rdf::rdf {

Term Term::Iri(std::string iri) {
  return Term(TermKind::kIri, std::move(iri), "", "");
}

Term Term::Blank(std::string name) {
  return Term(TermKind::kBlankNode, std::move(name), "", "");
}

Term Term::Literal(std::string lexical, std::string datatype,
                   std::string language) {
  return Term(TermKind::kLiteral, std::move(lexical), std::move(datatype),
              std::move(language));
}

std::string EscapeLiteral(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeLiteral(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        out += '\\';
        out += escaped[i];
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + value_ + ">";
    case TermKind::kBlankNode:
      return "_:" + value_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(value_) + "\"";
      if (!language_.empty()) {
        out += "@" + language_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

StatusOr<Term> Term::Parse(std::string_view token) {
  if (token.empty()) return InvalidArgumentError("empty term token");
  if (token.front() == '<') {
    if (token.back() != '>' || token.size() < 2) {
      return InvalidArgumentError("malformed IRI: " + std::string(token));
    }
    return Term::Iri(std::string(token.substr(1, token.size() - 2)));
  }
  if (token.size() >= 2 && token[0] == '_' && token[1] == ':') {
    return Term::Blank(std::string(token.substr(2)));
  }
  if (token.front() == '"') {
    // Find the closing unescaped quote.
    size_t close = std::string_view::npos;
    for (size_t i = 1; i < token.size(); ++i) {
      if (token[i] == '\\') {
        ++i;
        continue;
      }
      if (token[i] == '"') {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) {
      return InvalidArgumentError("unterminated literal: " +
                                  std::string(token));
    }
    std::string lexical = UnescapeLiteral(token.substr(1, close - 1));
    std::string_view rest = token.substr(close + 1);
    if (rest.empty()) return Term::Literal(std::move(lexical));
    if (rest.front() == '@') {
      return Term::Literal(std::move(lexical), "",
                           std::string(rest.substr(1)));
    }
    if (rest.size() > 4 && rest.substr(0, 3) == "^^<" && rest.back() == '>') {
      return Term::Literal(std::move(lexical),
                           std::string(rest.substr(3, rest.size() - 4)));
    }
    return InvalidArgumentError("malformed literal suffix: " +
                                std::string(token));
  }
  return InvalidArgumentError("unrecognized term: " + std::string(token));
}

}  // namespace s2rdf::rdf
